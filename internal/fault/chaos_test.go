package fault_test

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"chime/internal/core"
	"chime/internal/dmsim"
	"chime/internal/fault"
	"chime/internal/obs"
	"chime/internal/rolex"
	"chime/internal/sherman"
	"chime/internal/smartidx"
)

// Chaos harness: all four systems run a write-heavy workload under an
// escalating fault schedule — latency spikes, dropped completions, an
// MN blackout window, and (in the crash variant) two clients torn down
// right after winning a remote lock. After quiescence a clean client
// verifies the recovery invariants:
//
//   - No lost acked updates: every key's stored value is one the owner
//     actually issued, no older than its last acknowledged write.
//   - No duplicate keys and no lost keys: a full scan returns exactly
//     the loaded key set, strictly ascending.
//   - Recovery fired iff a crash occurred: the lease-recovery counters
//     are positive with victims and exactly zero without (a live holder
//     is never stolen from).
//
// Fault decisions are a pure function of (seed, client, per-client verb
// sequence, virtual time) — see internal/fault — so a failure here
// replays under the same seed.

const (
	chaosKeys       = 1024
	chaosWorkers    = 4
	chaosOpsPerWkr  = 3 * chaosKeys / chaosWorkers // ~3 passes over owned keys
	chaosValueSize  = 8
	chaosCacheBytes = 16 << 20

	// The lease must dominate worst-case holder slowness: virtual-clock
	// skew between clients grows with accumulated fault penalties (each
	// ridden-out drop or blackout round adds the verb timeout to one
	// client's clock but not its rivals'), and a lease shorter than that
	// skew lets a contender steal from a live holder. 10 ms of virtual
	// time is far above any penalty this schedule can accumulate while a
	// lock is held, yet costs only ~1.2k backoff spins to ride out when
	// a genuine crash leaves a lock orphaned.
	chaosLeaseNs = 10_000_000
)

// Values are tagged so the verifier can attribute every stored byte:
// load values carry tag 0xFF, worker values carry the worker index.
func loadValue(key uint64) []byte { return encodeValue(0xFF, key) }
func workerValue(w, seq int) []byte {
	return encodeValue(byte(w), uint64(seq))
}
func encodeValue(tag byte, seq uint64) []byte {
	v := make([]byte, chaosValueSize)
	binary.LittleEndian.PutUint64(v, uint64(tag)<<56|seq&((1<<56)-1))
	return v
}
func decodeValue(v []byte) (tag byte, seq uint64) {
	w := binary.LittleEndian.Uint64(v)
	return byte(w >> 56), w & ((1 << 56) - 1)
}

// chaosClient is the slice of each index's API the harness drives.
type chaosClient interface {
	Search(key uint64) ([]byte, error)
	Update(key uint64, value []byte) error
	Scan(start uint64, count int) (keys []uint64, vals [][]byte, err error)
	DM() *dmsim.Client
}

type chaosSystem struct {
	name string
	// setup bootstraps the index on the fabric with lease locks enabled,
	// attaches the sink, loads the keys, and returns a client factory.
	setup func(f *dmsim.Fabric, sink *obs.Sink, keys []uint64, vals map[uint64][]byte) (func() chaosClient, error)
}

// ---- adapters ----

type chimeChaos struct{ cl *core.Client }

func (c chimeChaos) Search(k uint64) ([]byte, error) { return c.cl.Search(k) }
func (c chimeChaos) Update(k uint64, v []byte) error { return c.cl.Update(k, v) }
func (c chimeChaos) DM() *dmsim.Client               { return c.cl.DM() }
func (c chimeChaos) Scan(s uint64, n int) ([]uint64, [][]byte, error) {
	kvs, err := c.cl.Scan(s, n)
	return splitCoreKVs(kvs), coreVals(kvs), err
}
func splitCoreKVs(kvs []core.KV) []uint64 {
	ks := make([]uint64, len(kvs))
	for i, kv := range kvs {
		ks[i] = kv.Key
	}
	return ks
}
func coreVals(kvs []core.KV) [][]byte {
	vs := make([][]byte, len(kvs))
	for i, kv := range kvs {
		vs[i] = kv.Value
	}
	return vs
}

type shermanChaos struct{ cl *sherman.Client }

func (c shermanChaos) Search(k uint64) ([]byte, error) { return c.cl.Search(k) }
func (c shermanChaos) Update(k uint64, v []byte) error { return c.cl.Update(k, v) }
func (c shermanChaos) DM() *dmsim.Client               { return c.cl.DM() }
func (c shermanChaos) Scan(s uint64, n int) ([]uint64, [][]byte, error) {
	kvs, err := c.cl.Scan(s, n)
	ks := make([]uint64, len(kvs))
	vs := make([][]byte, len(kvs))
	for i, kv := range kvs {
		ks[i], vs[i] = kv.Key, kv.Value
	}
	return ks, vs, err
}

type smartChaos struct{ cl *smartidx.Client }

func (c smartChaos) Search(k uint64) ([]byte, error) { return c.cl.Search(k) }
func (c smartChaos) Update(k uint64, v []byte) error { return c.cl.Update(k, v) }
func (c smartChaos) DM() *dmsim.Client               { return c.cl.DM() }
func (c smartChaos) Scan(s uint64, n int) ([]uint64, [][]byte, error) {
	kvs, err := c.cl.Scan(s, n)
	ks := make([]uint64, len(kvs))
	vs := make([][]byte, len(kvs))
	for i, kv := range kvs {
		ks[i], vs[i] = kv.Key, kv.Value
	}
	return ks, vs, err
}

type rolexChaos struct{ cl *rolex.Client }

func (c rolexChaos) Search(k uint64) ([]byte, error) { return c.cl.Search(k) }
func (c rolexChaos) Update(k uint64, v []byte) error { return c.cl.Update(k, v) }
func (c rolexChaos) DM() *dmsim.Client               { return c.cl.DM() }
func (c rolexChaos) Scan(s uint64, n int) ([]uint64, [][]byte, error) {
	kvs, err := c.cl.Scan(s, n)
	ks := make([]uint64, len(kvs))
	vs := make([][]byte, len(kvs))
	for i, kv := range kvs {
		ks[i], vs[i] = kv.Key, kv.Value
	}
	return ks, vs, err
}

func chaosSystems() []chaosSystem {
	return []chaosSystem{
		{name: "CHIME", setup: func(f *dmsim.Fabric, sink *obs.Sink, keys []uint64, vals map[uint64][]byte) (func() chaosClient, error) {
			opts := core.DefaultOptions()
			opts.LeaseLocks = true
			opts.LeaseNs = chaosLeaseNs
			ix, err := core.Bootstrap(f, opts)
			if err != nil {
				return nil, err
			}
			cn := ix.NewComputeNode(chaosCacheBytes, 1<<20)
			cn.SetObserver(sink)
			loader := cn.NewClient()
			for _, k := range keys {
				if err := loader.Insert(k, vals[k]); err != nil {
					return nil, err
				}
			}
			return func() chaosClient { return chimeChaos{cl: cn.NewClient()} }, nil
		}},
		{name: "Sherman", setup: func(f *dmsim.Fabric, sink *obs.Sink, keys []uint64, vals map[uint64][]byte) (func() chaosClient, error) {
			opts := sherman.DefaultOptions()
			opts.LeaseLocks = true
			opts.LeaseNs = chaosLeaseNs
			ix, err := sherman.Bootstrap(f, opts)
			if err != nil {
				return nil, err
			}
			cn := ix.NewComputeNode(chaosCacheBytes)
			cn.SetObserver(sink)
			loader := cn.NewClient()
			for _, k := range keys {
				if err := loader.Insert(k, vals[k]); err != nil {
					return nil, err
				}
			}
			return func() chaosClient { return shermanChaos{cl: cn.NewClient()} }, nil
		}},
		{name: "SMART", setup: func(f *dmsim.Fabric, sink *obs.Sink, keys []uint64, vals map[uint64][]byte) (func() chaosClient, error) {
			opts := smartidx.DefaultOptions()
			opts.LeaseLocks = true
			opts.LeaseNs = chaosLeaseNs
			ix, err := smartidx.Bootstrap(f, opts)
			if err != nil {
				return nil, err
			}
			cn := ix.NewComputeNode(chaosCacheBytes)
			cn.SetObserver(sink)
			loader := cn.NewClient()
			for _, k := range keys {
				if err := loader.Insert(k, vals[k]); err != nil {
					return nil, err
				}
			}
			return func() chaosClient { return smartChaos{cl: cn.NewClient()} }, nil
		}},
		{name: "ROLEX", setup: func(f *dmsim.Fabric, sink *obs.Sink, keys []uint64, vals map[uint64][]byte) (func() chaosClient, error) {
			opts := rolex.DefaultOptions()
			opts.LeaseLocks = true
			opts.LeaseNs = chaosLeaseNs
			ix, err := rolex.Build(f, opts, keys, vals)
			if err != nil {
				return nil, err
			}
			cn := ix.NewComputeNode()
			cn.SetObserver(sink)
			return func() chaosClient { return rolexChaos{cl: cn.NewClient()} }, nil
		}},
	}
}

func chaosFabric() *dmsim.Fabric {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 96 << 20
	return dmsim.MustNewFabric(cfg)
}

// workerLog tracks one worker's issued and acknowledged updates.
type workerLog struct {
	issued  map[uint64]uint64 // key -> number of updates issued (seqs 0..n-1)
	acked   map[uint64]uint64 // key -> 1 + seq of last acked update
	crashed bool
}

func TestChaosRecovery(t *testing.T) {
	for _, sys := range chaosSystems() {
		sys := sys
		t.Run(sys.name, func(t *testing.T) {
			runChaos(t, sys, true)
		})
	}
}

func TestChaosFaultsWithoutCrashes(t *testing.T) {
	for _, sys := range chaosSystems() {
		sys := sys
		t.Run(sys.name, func(t *testing.T) {
			runChaos(t, sys, false)
		})
	}
}

func runChaos(t *testing.T, sys chaosSystem, withCrashes bool) {
	f := chaosFabric()
	sink := obs.NewSink(false)
	f.SetObserver(sink)

	keys := make([]uint64, chaosKeys)
	vals := make(map[uint64][]byte, chaosKeys)
	for i := range keys {
		k := uint64(i + 1)
		keys[i] = k
		vals[k] = loadValue(k)
	}
	newClient, err := sys.setup(f, sink, keys, vals)
	if err != nil {
		t.Fatalf("setup: %v", err)
	}

	// The escalating schedule attaches only after the clean load. The
	// blackout window (60 µs) sits inside the retry budget (8 × 10 µs),
	// so it is ridden out by transparent reposts rather than surfacing.
	now := f.Frontier()
	sched := fault.NewSchedule(fault.Config{
		Seed:      4242,
		DropRate:  0.002,
		SpikeRate: 0.01,
		SpikeNs:   20_000,
		Blackouts: map[int][]fault.Window{
			0: {{Start: now + 200_000, End: now + 260_000}},
		},
	})
	f.SetFaultInjector(sched)

	// Workers own interleaved key ranges (key k belongs to worker
	// k % chaosWorkers), so neighbors in every leaf belong to different
	// workers and survivors are guaranteed to traverse a victim's locked
	// node. Victims crash right after winning a lock CAS.
	clients := make([]chaosClient, chaosWorkers)
	for i := range clients {
		clients[i] = newClient()
	}
	victims := map[int]bool{}
	if withCrashes {
		sched.CrashAfterLockAcquires(clients[0].DM().ID(), 7)
		sched.CrashAfterLockAcquires(clients[1].DM().ID(), 23)
		victims[0], victims[1] = true, true
	}

	logs := make([]*workerLog, chaosWorkers)
	var wg sync.WaitGroup
	for i := range clients {
		logs[i] = &workerLog{issued: map[uint64]uint64{}, acked: map[uint64]uint64{}}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := clients[w]
			dc := cl.DM()
			dc.JoinCohort()
			defer dc.LeaveCohort()
			lg := logs[w]
			for op := 0; op < chaosOpsPerWkr; op++ {
				key := keys[(op*chaosWorkers+w)%chaosKeys]
				seq := lg.issued[key]
				lg.issued[key] = seq + 1
				err := cl.Update(key, workerValue(w, int(seq)))
				if err != nil {
					if dc.Crashed() {
						lg.crashed = true
						return
					}
					t.Errorf("worker %d: Update(%#x): %v", w, key, err)
					return
				}
				lg.acked[key] = seq + 1
			}
		}(i)
	}
	wg.Wait()

	if withCrashes {
		for i := range victims {
			if !logs[i].crashed {
				t.Errorf("victim %d never crashed", i)
			}
		}
		if st := f.FaultStats(); st.Crashes != int64(len(victims)) {
			t.Errorf("FaultStats.Crashes = %d, want %d", st.Crashes, len(victims))
		}
	}

	// Quiesce: detach the injector and verify with a clean client.
	f.SetFaultInjector(nil)
	ver := newClient()

	// Structural consistency: a full scan returns exactly the loaded key
	// set, strictly ascending — no lost keys, no duplicates.
	gotKeys, gotVals, err := ver.Scan(1, chaosKeys+16)
	if err != nil {
		t.Fatalf("verify scan: %v", err)
	}
	if len(gotKeys) != chaosKeys {
		t.Fatalf("scan returned %d keys, want %d", len(gotKeys), chaosKeys)
	}
	for i, k := range gotKeys {
		if k != keys[i] {
			t.Fatalf("scan[%d] = %#x, want %#x (duplicate or lost key)", i, k, keys[i])
		}
	}

	// No lost acked updates: each key's value must be attributable to
	// its owner (or the load), and at least as new as the last ack.
	for i, k := range gotKeys {
		owner := int(k-1) % chaosWorkers
		lg := logs[owner]
		tag, seq := decodeValue(gotVals[i])
		switch {
		case tag == 0xFF:
			if lg.acked[k] != 0 {
				t.Fatalf("key %#x: load value survived but worker %d had %d acked updates (lost ack)",
					k, owner, lg.acked[k])
			}
			if seq != k {
				t.Fatalf("key %#x: corrupt load value (seq %#x)", k, seq)
			}
		case int(tag) == owner:
			if seq >= lg.issued[k] {
				t.Fatalf("key %#x: value seq %d was never issued (max %d)", k, seq, lg.issued[k])
			}
			if seq+1 < lg.acked[k] {
				t.Fatalf("key %#x: value seq %d older than last acked %d (lost ack)", k, seq, lg.acked[k]-1)
			}
		default:
			t.Fatalf("key %#x: value tagged %d, owner is %d", k, tag, owner)
		}
	}

	// Spot-check Search agrees with Scan on a few keys.
	for _, k := range []uint64{1, chaosKeys / 2, chaosKeys} {
		if _, err := ver.Search(k); err != nil {
			t.Fatalf("verify Search(%#x): %v", k, err)
		}
	}

	// Recovery counters: positive iff a victim died holding a lock.
	snap := sink.Registry().Snapshot()
	expired := snap.Counters[obs.NameLeaseExpired]
	recov := snap.Counters[obs.NameRecovery]
	if withCrashes {
		if recov == 0 {
			t.Errorf("no lease recoveries despite %d crashed lock holders", len(victims))
		}
	} else {
		if expired != 0 || recov != 0 {
			t.Errorf("lease expiry fired on live holders: expired=%d recoveries=%d", expired, recov)
		}
	}
	if testing.Verbose() {
		st := f.FaultStats()
		fmt.Printf("%s crashes=%v: faults{timeouts=%d retries=%d crashes=%d} expired=%d recovered=%d\n",
			sys.name, withCrashes, st.Timeouts, st.Retries, st.Crashes, expired, recov)
	}
}
