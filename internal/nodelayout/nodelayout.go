// Package nodelayout provides the byte-level node layout machinery
// shared by every remote index in this repository: cell placement around
// 64-byte cache-line boundaries and the two-level cache-line versions of
// CHIME §4.1.1 (which Sherman also uses, after the paper's correction of
// its original bookend versioning).
//
// A node image is a flat byte region carved into "Cells" (header, each
// entry, each metadata replica). Every cell carries version bytes:
//
//   - a cell whose content fits in one 64-byte line (content <= 63
//     bytes) is placed so it never crosses a line boundary and carries a
//     single leading version byte;
//   - a larger cell is line-aligned and carries one version byte at the
//     start of every line it occupies, content packed into the remaining
//     63 bytes per line (the "1-byte version per 63 bytes of data"
//     overhead the paper reports).
//
// Each version byte packs a 4-bit node-level version NV (high nibble)
// and a 4-bit entry-level version EV (low nibble). A node write
// increments NV in every version byte of the node; an entry write
// increments EV only in the cell's own version bytes. A reader accepts a
// fetched window only if all NVs in it match and, within each cell, all
// version bytes are identical. The dmsim fabric copies 64-byte-aligned
// lines atomically (PCIe TLP atomicity), so a version byte is always
// consistent with the rest of its line.
package nodelayout

import (
	"errors"
	"fmt"
)

// LineSize is the cache-line granularity of version placement.
const LineSize = 64

// PackVer packs node-level and entry-level version nibbles.
func PackVer(nv, ev uint8) byte { return byte(nv&0xF)<<4 | byte(ev&0xF) }

// VerNV extracts the node-level version nibble.
func VerNV(b byte) uint8 { return uint8(b >> 4) }

// VerEV extracts the entry-level version nibble.
func VerEV(b byte) uint8 { return uint8(b & 0xF) }

// Cell describes one versioned region inside a node image.
type Cell struct {
	Off     int // byte offset of the first version byte
	Content int // content bytes (excluding version bytes)
	Big     bool
	Lines   int // big cells: number of 64-byte lines occupied
}

// Physical returns the cell's total footprint in the image.
func (c Cell) Physical() int {
	if c.Big {
		return c.Lines * LineSize
	}
	return 1 + c.Content
}

// End returns the byte offset just past the cell.
func (c Cell) End() int { return c.Off + c.Physical() }

// VersionOffsets appends the image offsets of the cell's version bytes.
func (c Cell) VersionOffsets(dst []int) []int {
	if !c.Big {
		return append(dst, c.Off)
	}
	for l := 0; l < c.Lines; l++ {
		dst = append(dst, c.Off+l*LineSize)
	}
	return dst
}

// LayoutCells places cells with the given content sizes sequentially
// from byte offset start, respecting the line-crossing rule, and returns
// the cells plus the total region size.
func LayoutCells(start int, contents []int) ([]Cell, int) {
	cells := make([]Cell, len(contents))
	cur := start
	for i, c := range contents {
		if c <= LineSize-1 {
			phys := 1 + c
			if cur%LineSize+phys > LineSize {
				cur += LineSize - cur%LineSize // pad to next line
			}
			cells[i] = Cell{Off: cur, Content: c}
			cur += phys
		} else {
			if cur%LineSize != 0 {
				cur += LineSize - cur%LineSize
			}
			lines := (c + LineSize - 2) / (LineSize - 1) // ceil(c/63)
			cells[i] = Cell{Off: cur, Content: c, Big: true, Lines: lines}
			cur += lines * LineSize
		}
	}
	return cells, cur - start
}

// WriteCellContent scatters content bytes into the image around the
// cell's version bytes. len(content) must equal c.Content.
func WriteCellContent(img []byte, c Cell, content []byte) {
	if len(content) != c.Content {
		panic(fmt.Sprintf("nodelayout: cell content %d bytes, cell holds %d", len(content), c.Content))
	}
	if !c.Big {
		copy(img[c.Off+1:], content)
		return
	}
	rem := content
	for l := 0; l < c.Lines && len(rem) > 0; l++ {
		n := LineSize - 1
		if n > len(rem) {
			n = len(rem)
		}
		copy(img[c.Off+l*LineSize+1:], rem[:n])
		rem = rem[n:]
	}
}

// ReadCellContent gathers a cell's content bytes from the image.
func ReadCellContent(img []byte, c Cell, dst []byte) []byte {
	dst = dst[:0]
	if !c.Big {
		return append(dst, img[c.Off+1:c.Off+1+c.Content]...)
	}
	rem := c.Content
	for l := 0; l < c.Lines && rem > 0; l++ {
		n := LineSize - 1
		if n > rem {
			n = rem
		}
		base := c.Off + l*LineSize + 1
		dst = append(dst, img[base:base+n]...)
		rem -= n
	}
	return dst
}

// BumpNV increments the node-level version in every version byte of the
// given cells (a node write).
func BumpNV(img []byte, cells []Cell) {
	var offs []int
	for _, c := range cells {
		offs = c.VersionOffsets(offs[:0])
		for _, o := range offs {
			b := img[o]
			img[o] = PackVer(VerNV(b)+1, VerEV(b))
		}
	}
}

// BumpEV increments the entry-level version in one cell's version bytes
// (an entry write).
func BumpEV(img []byte, c Cell) {
	var offs [16]int
	for _, o := range c.VersionOffsets(offs[:0]) {
		b := img[o]
		img[o] = PackVer(VerNV(b), VerEV(b)+1)
	}
}

// ErrTornRead is returned when version validation fails: the reader
// raced a concurrent write and must retry.
var ErrTornRead = errors.New("nodelayout: torn read (version mismatch)")

// CheckVersions validates a fetched window: every version byte of every
// given cell must carry the same NV, and within each cell all version
// bytes must be identical (same NV and EV). Cell offsets are image
// offsets; winOff is the image offset where the window begins.
func CheckVersions(win []byte, winOff int, cells []Cell) error {
	first := true
	var nv uint8
	var offs [16]int
	for _, c := range cells {
		vo := c.VersionOffsets(offs[:0])
		b0 := win[vo[0]-winOff]
		if first {
			nv = VerNV(b0)
			first = false
		} else if VerNV(b0) != nv {
			return ErrTornRead
		}
		for _, o := range vo[1:] {
			if win[o-winOff] != b0 {
				return ErrTornRead
			}
		}
	}
	return nil
}
