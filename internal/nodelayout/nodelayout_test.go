package nodelayout

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPackVerRoundTrip(t *testing.T) {
	for nv := uint8(0); nv < 16; nv++ {
		for ev := uint8(0); ev < 16; ev++ {
			b := PackVer(nv, ev)
			if VerNV(b) != nv || VerEV(b) != ev {
				t.Fatalf("PackVer(%d,%d) -> (%d,%d)", nv, ev, VerNV(b), VerEV(b))
			}
		}
	}
}

func TestLayoutNeverCrossesLinesForSmallCells(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		contents := make([]int, n)
		for i := range contents {
			contents[i] = 1 + r.Intn(63)
		}
		cells, size := LayoutCells(r.Intn(4)*LineSize, contents)
		prevEnd := 0
		for i, c := range cells {
			if c.Big {
				return false
			}
			if c.Off%LineSize+c.Physical() > LineSize {
				t.Logf("seed %d: cell %d crosses line", seed, i)
				return false
			}
			if c.Off < prevEnd {
				return false
			}
			prevEnd = c.End()
		}
		return size >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBigCellGeometry(t *testing.T) {
	for _, content := range []int{64, 63*2 - 1, 63 * 2, 63*2 + 1, 1000} {
		cells, _ := LayoutCells(0, []int{content})
		c := cells[0]
		if !c.Big {
			t.Fatalf("content %d should be big", content)
		}
		wantLines := (content + LineSize - 2) / (LineSize - 1)
		if c.Lines != wantLines {
			t.Fatalf("content %d: %d lines, want %d", content, c.Lines, wantLines)
		}
		if c.Physical() != wantLines*LineSize {
			t.Fatalf("content %d: physical %d", content, c.Physical())
		}
	}
}

func TestContentRoundTripProperty(t *testing.T) {
	prop := func(seed int64, sz uint16) bool {
		size := int(sz)%500 + 1
		cells, total := LayoutCells(0, []int{size})
		img := make([]byte, total)
		r := rand.New(rand.NewSource(seed))
		content := make([]byte, size)
		r.Read(content)
		WriteCellContent(img, cells[0], content)
		return bytes.Equal(ReadCellContent(img, cells[0], nil), content)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVersionIsolationBetweenAdjacentCells(t *testing.T) {
	// Two small cells in the same line: bumping one's EV must not
	// disturb the other's content or version.
	cells, total := LayoutCells(0, []int{20, 20})
	img := make([]byte, total)
	WriteCellContent(img, cells[0], bytes.Repeat([]byte{1}, 20))
	WriteCellContent(img, cells[1], bytes.Repeat([]byte{2}, 20))
	BumpEV(img, cells[0])
	if VerEV(img[cells[1].Off]) != 0 {
		t.Fatal("EV bump leaked to neighbor")
	}
	if !bytes.Equal(ReadCellContent(img, cells[1], nil), bytes.Repeat([]byte{2}, 20)) {
		t.Fatal("neighbor content disturbed")
	}
}

func TestCheckVersionsAcceptsConsistentWindow(t *testing.T) {
	cells, total := LayoutCells(0, []int{30, 30, 200})
	img := make([]byte, total)
	for i := 0; i < 5; i++ {
		BumpNV(img, cells)
	}
	BumpEV(img, cells[1])
	if err := CheckVersions(img, 0, cells); err != nil {
		t.Fatalf("consistent image rejected: %v", err)
	}
}

func TestCheckVersionsRejectsMixedNV(t *testing.T) {
	cells, total := LayoutCells(0, []int{30, 30})
	img := make([]byte, total)
	BumpNV(img, cells[:1])
	if err := CheckVersions(img, 0, cells); err != ErrTornRead {
		t.Fatalf("mixed NV accepted: %v", err)
	}
}

func TestCheckVersionsRejectsIntraCellMix(t *testing.T) {
	cells, total := LayoutCells(0, []int{300})
	img := make([]byte, total)
	offs := cells[0].VersionOffsets(nil)
	if len(offs) < 2 {
		t.Fatal("big cell must have multiple version bytes")
	}
	img[offs[len(offs)-1]] = PackVer(0, 3)
	if err := CheckVersions(img, 0, cells); err != ErrTornRead {
		t.Fatalf("intra-cell mix accepted: %v", err)
	}
}

func TestNibbleWraparoundStaysConsistent(t *testing.T) {
	// 20 NV bumps wrap the 4-bit nibble; consistency must survive.
	cells, total := LayoutCells(0, []int{30, 200})
	img := make([]byte, total)
	for i := 0; i < 20; i++ {
		BumpNV(img, cells)
		if err := CheckVersions(img, 0, cells); err != nil {
			t.Fatalf("bump %d: %v", i, err)
		}
	}
	if VerNV(img[cells[0].Off]) != 20%16 {
		t.Fatalf("NV = %d, want 4", VerNV(img[cells[0].Off]))
	}
}

func TestWriteCellContentPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cells, total := LayoutCells(0, []int{10})
	WriteCellContent(make([]byte, total), cells[0], make([]byte, 11))
}
