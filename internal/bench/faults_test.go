package bench

import (
	"encoding/json"
	"strings"
	"testing"

	"chime/internal/fault"
	"chime/internal/ycsb"
)

// TestFaultsZeroScheduleBitIdentical pins the "off means off" contract
// of the fault plane end to end: a deterministic single-client run with
// a zero-rate fault Schedule attached must produce bit-identical
// virtual-time results to the same run with no injector at all. The
// gate is consulted on every verb either way; a consulted-but-silent
// injector must not advance any clock.
func TestFaultsZeroScheduleBitIdentical(t *testing.T) {
	sc := tinyScale
	sc.LoadN = 3000

	measure := func(inj *fault.Schedule) Result {
		t.Helper()
		sys, cfg, err := buildSystem("CHIME", sc, 1, func(c *SystemConfig) {
			c.LoadClients = 1 // single-threaded: fully deterministic
		})
		if err != nil {
			t.Fatal(err)
		}
		if inj != nil {
			cfg.Fabric.SetFaultInjector(inj)
		}
		r, err := runPoint(sys, cfg, ycsb.WorkloadA, 1, 800, 9)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	plain := measure(nil)
	gated := measure(fault.NewSchedule(fault.Config{Seed: 123}))
	if plain.Ops != gated.Ops ||
		plain.ThroughputMops != gated.ThroughputMops ||
		plain.P50Us != gated.P50Us ||
		plain.P99Us != gated.P99Us ||
		plain.TripsPerOp != gated.TripsPerOp {
		t.Fatalf("zero-rate schedule changed virtual-time results:\nplain: %+v\ngated: %+v", plain, gated)
	}
}

// TestRunFaultsSweep smoke-runs the registered experiment shape on a
// reduced matrix and checks the fault columns respond to the rate.
func TestRunFaultsSweep(t *testing.T) {
	sc := tinyScale
	sc.Ops = 1000
	sc.Clients = 4
	rows, err := RunFaults(sc, 0, []float64{0, 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(HeadToHeadSystems)*2*2 {
		t.Fatalf("got %d rows, want %d", len(rows), len(HeadToHeadSystems)*2*2)
	}
	for _, r := range rows {
		if r.ThroughputMops <= 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
		if r.Rate == 0 {
			if r.VerbTimeoutsPerOp != 0 || r.VerbRetriesPerOp != 0 {
				t.Fatalf("clean row has fault events: %+v", r)
			}
			if r.SlowdownVsClean != 1 {
				t.Fatalf("clean row slowdown %f != 1", r.SlowdownVsClean)
			}
		} else if r.VerbRetriesPerOp == 0 {
			t.Fatalf("faulted row saw no verb retries: %+v", r)
		}
	}

	table := FormatFaultsRows(rows)
	for _, want := range []string{"CHIME", "ROLEX", "retry/op"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	blob, err := MarshalFaultsJSON(sc, rows)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Experiment string     `json:"experiment"`
		Rows       []FaultRow `json:"rows"`
	}
	if err := json.Unmarshal(blob, &parsed); err != nil {
		t.Fatalf("faults JSON does not parse: %v", err)
	}
	if parsed.Experiment != "faults" || len(parsed.Rows) != len(rows) {
		t.Fatalf("artifact shape: experiment=%q rows=%d", parsed.Experiment, len(parsed.Rows))
	}
}
