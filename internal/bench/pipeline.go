package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"chime/internal/dmsim"
	"chime/internal/obs"
	"chime/internal/ycsb"
)

// Pipelined multi-get experiment (async verb pipelining). RunMultiGet
// drives a workload where read ops are accumulated into batches and
// issued through BatchSearcher.SearchBatch with a given pipeline depth;
// non-read ops (the updates of YCSB B) flush the pending batch and run
// synchronously, as a coroutine-multiplexed client would.

// MultiGetConfig drives one RunMultiGet phase.
type MultiGetConfig struct {
	Mix          ycsb.Mix
	Clients      int
	OpsPerClient int
	// BatchSize is how many read keys accumulate before a SearchBatch
	// is issued (default 64).
	BatchSize int
	// Depth is the pipeline depth passed to SearchBatch. 1 reproduces
	// sequential lookups through the same code path.
	Depth     int
	ValueSize int
	KeySpace  *ycsb.KeySpace
	Seed      int64
}

// MultiGetResult extends Result with pipeline-depth metadata.
type MultiGetResult struct {
	Result
	Depth       int
	MaxInflight int64
}

// RunMultiGet executes the batched workload. The system's clients must
// implement BatchSearcher.
func RunMultiGet(sys System, cfg MultiGetConfig) (MultiGetResult, error) {
	if cfg.Clients <= 0 || cfg.OpsPerClient <= 0 {
		return MultiGetResult{}, fmt.Errorf("bench: bad multiget config %+v", cfg)
	}
	if cfg.KeySpace == nil {
		return MultiGetResult{}, fmt.Errorf("bench: MultiGetConfig.KeySpace required")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.Depth < 1 {
		cfg.Depth = 1
	}

	type clientOut struct {
		hist     *obs.Histogram
		ops      int64
		duration int64
		stats    dmsim.ClientStats
		err      error
	}
	outs := make([]clientOut, cfg.Clients)
	clients := make([]Client, cfg.Clients)
	for ci := range clients {
		clients[ci] = sys.NewClient()
		if _, ok := clients[ci].(BatchSearcher); !ok {
			return MultiGetResult{}, fmt.Errorf("bench: %s clients do not implement SearchBatch (RDWC enabled?)", sys.Name())
		}
		clients[ci].DM().JoinCohort()
	}
	var wg sync.WaitGroup
	for ci := 0; ci < cfg.Clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cl := clients[ci]
			defer cl.DM().LeaveCohort()
			bs := cl.(BatchSearcher)
			gen, err := ycsb.NewGenerator(cfg.Mix, cfg.KeySpace, cfg.Seed+int64(ci)*7919)
			if err != nil {
				outs[ci].err = err
				return
			}
			h := obs.NewHistogram()
			dm := cl.DM()
			dm.ResetStats()
			start := dm.Now()
			value := make([]byte, cfg.ValueSize)
			pending := make([]uint64, 0, cfg.BatchSize)
			flush := func() error {
				if len(pending) == 0 {
					return nil
				}
				t0 := dm.Now()
				_, errs := bs.SearchBatch(pending, cfg.Depth)
				for _, e := range errs {
					if e != nil && !errors.Is(e, ErrNotFound) {
						return e
					}
				}
				// Amortize the batch's virtual time over its keys so the
				// histogram stays per-op.
				per := (dm.Now() - t0) / int64(len(pending))
				for range pending {
					h.Observe(per)
				}
				pending = pending[:0]
				return nil
			}
			for i := 0; i < cfg.OpsPerClient; i++ {
				op := gen.Next()
				if op.Kind == ycsb.OpRead {
					pending = append(pending, op.Key)
					if len(pending) >= cfg.BatchSize {
						if err := flush(); err != nil {
							outs[ci].err = fmt.Errorf("bench: client %d batch: %w", ci, err)
							return
						}
					}
					continue
				}
				if err := flush(); err != nil {
					outs[ci].err = fmt.Errorf("bench: client %d batch: %w", ci, err)
					return
				}
				t0 := dm.Now()
				var err error
				switch op.Kind {
				case ycsb.OpUpdate:
					err = cl.Update(op.Key, value)
				case ycsb.OpInsert:
					err = cl.Insert(op.Key, value)
				case ycsb.OpScan:
					_, err = cl.Scan(op.Key, op.ScanLen)
				case ycsb.OpReadModifyWrite:
					if _, err = cl.Search(op.Key); err == nil || errors.Is(err, ErrNotFound) {
						err = cl.Update(op.Key, value)
					}
				}
				if err != nil && !errors.Is(err, ErrNotFound) {
					outs[ci].err = fmt.Errorf("bench: client %d op %d (%v %#x): %w", ci, i, op.Kind, op.Key, err)
					return
				}
				h.Observe(dm.Now() - t0)
			}
			if err := flush(); err != nil {
				outs[ci].err = fmt.Errorf("bench: client %d final batch: %w", ci, err)
				return
			}
			outs[ci] = clientOut{
				hist:     h,
				ops:      int64(cfg.OpsPerClient),
				duration: dm.Now() - start,
				stats:    dm.Stats(),
			}
		}(ci)
	}
	wg.Wait()

	total := obs.NewHistogram()
	var ops, maxDur, maxInflight int64
	var stats dmsim.ClientStats
	for _, o := range outs {
		if o.err != nil {
			return MultiGetResult{}, o.err
		}
		total.Merge(o.hist)
		ops += o.ops
		if o.duration > maxDur {
			maxDur = o.duration
		}
		if o.stats.MaxInflight > maxInflight {
			maxInflight = o.stats.MaxInflight
		}
		stats.Trips += o.stats.Trips
		stats.BytesRead += o.stats.BytesRead
		stats.BytesWritten += o.stats.BytesWritten
	}
	if maxDur == 0 {
		maxDur = 1
	}
	return MultiGetResult{
		Result: Result{
			System:         sys.Name(),
			Mix:            cfg.Mix.Name,
			Clients:        cfg.Clients,
			Ops:            ops,
			ThroughputMops: float64(ops) * 1e3 / float64(maxDur),
			P50Us:          float64(total.Quantile(0.50)) / 1e3,
			P99Us:          float64(total.Quantile(0.99)) / 1e3,
			TripsPerOp:     float64(stats.Trips) / float64(ops),
			ReadBytes:      float64(stats.BytesRead) / float64(ops),
			WriteBytes:     float64(stats.BytesWritten) / float64(ops),
			CacheBytes:     sys.CacheBytes(),
		},
		Depth:       cfg.Depth,
		MaxInflight: maxInflight,
	}, nil
}

// PipelineDepths is the sensitivity sweep's depth axis.
var PipelineDepths = []int{1, 2, 4, 8, 16}

// PipelineRow is one point of the pipeline-depth sensitivity experiment,
// JSON-serializable for the committed BENCH_PIPELINE.json artifact.
type PipelineRow struct {
	System          string  `json:"system"`
	Mix             string  `json:"mix"`
	Depth           int     `json:"depth"`
	Clients         int     `json:"clients"`
	Ops             int64   `json:"ops"`
	ThroughputMops  float64 `json:"throughput_mops"`
	SpeedupVsDepth1 float64 `json:"speedup_vs_depth1"`
	P50Us           float64 `json:"p50_us"`
	P99Us           float64 `json:"p99_us"`
	TripsPerOp      float64 `json:"trips_per_op"`
	MaxInflight     int64   `json:"max_inflight"`
}

// pipelineClients picks the sweep's client count: modest, so the NIC is
// not already saturated at depth 1 (pipelining can only expose queueing
// that sequential clients leave on the table; a saturated NIC compresses
// every depth to the same throughput).
func pipelineClients(sc Scale) int {
	pc := sc.Clients / 4
	if pc < 4 {
		pc = 4
	}
	return pc
}

// RunPipeline sweeps SearchBatch pipeline depth for CHIME and Sherman
// under YCSB C and YCSB B with a COLD internal-node cache (budget 0):
// every lookup pays full-depth remote reads, the regime where verb
// pipelining matters most. RDWC is disabled so the harness reaches the
// concrete batch interface.
func RunPipeline(sc Scale, depths []int) ([]PipelineRow, error) {
	if len(depths) == 0 {
		depths = PipelineDepths
	}
	clients := pipelineClients(sc)
	var rows []PipelineRow
	for _, name := range []string{"CHIME", "Sherman"} {
		for _, mix := range []ycsb.Mix{ycsb.WorkloadC, ycsb.WorkloadB} {
			sys, cfg, err := buildSystem(name, sc, 1, func(c *SystemConfig) {
				c.CacheBytes = 0 // cold: every internal hop is remote
				c.DisableRDWC = true
			})
			if err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			var base float64
			for _, depth := range depths {
				r, err := RunMultiGet(sys, MultiGetConfig{
					Mix:          mix,
					Clients:      clients,
					OpsPerClient: maxInt(sc.Ops/clients, 1),
					Depth:        depth,
					ValueSize:    cfg.ValueSize,
					KeySpace:     NewKeySpaceFor(cfg.LoadKeys),
					Seed:         31,
				})
				if err != nil {
					return nil, fmt.Errorf("%s %s depth=%d: %w", name, mix.Name, depth, err)
				}
				if base == 0 {
					base = r.ThroughputMops
				}
				rows = append(rows, PipelineRow{
					System:          name,
					Mix:             mix.Name,
					Depth:           depth,
					Clients:         clients,
					Ops:             r.Ops,
					ThroughputMops:  r.ThroughputMops,
					SpeedupVsDepth1: r.ThroughputMops / base,
					P50Us:           r.P50Us,
					P99Us:           r.P99Us,
					TripsPerOp:      r.TripsPerOp,
					MaxInflight:     r.MaxInflight,
				})
			}
		}
	}
	return rows, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FormatPipelineRows renders the sweep as an aligned table.
func FormatPipelineRows(rows []PipelineRow) string {
	out := fmt.Sprintf("%-10s %-6s %6s %8s %10s %9s %9s %9s %8s %9s\n",
		"system", "mix", "depth", "clients", "Mops", "speedup", "p50(us)", "p99(us)", "trips", "inflight")
	for _, r := range rows {
		out += fmt.Sprintf("%-10s %-6s %6d %8d %10.3f %9.2f %9.1f %9.1f %8.2f %9d\n",
			r.System, r.Mix, r.Depth, r.Clients, r.ThroughputMops,
			r.SpeedupVsDepth1, r.P50Us, r.P99Us, r.TripsPerOp, r.MaxInflight)
	}
	return out
}

// MarshalPipelineJSON renders the rows as the BENCH_PIPELINE.json
// artifact format.
func MarshalPipelineJSON(sc Scale, rows []PipelineRow) ([]byte, error) {
	return json.MarshalIndent(struct {
		Experiment string        `json:"experiment"`
		LoadN      int           `json:"load_n"`
		Ops        int           `json:"ops"`
		ColdCache  bool          `json:"cold_cache"`
		Rows       []PipelineRow `json:"rows"`
	}{
		Experiment: "pipeline",
		LoadN:      sc.LoadN,
		Ops:        sc.Ops,
		ColdCache:  true,
		Rows:       rows,
	}, "", "  ")
}

func init() {
	register(Experiment{ID: "pipeline", Title: "SearchBatch pipeline depth sweep (cold cache)", Run: Pipeline})
}

// Pipeline is the registered experiment wrapper around RunPipeline.
func Pipeline(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# Pipeline depth sweep: posted-verb multi-get, cold internal-node cache\n")
	rows, err := RunPipeline(sc, nil)
	if err != nil {
		return err
	}
	fmt.Fprint(w, FormatPipelineRows(rows))
	return nil
}
