package bench

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"

	"chime/internal/dmsim"
	"chime/internal/ycsb"
)

// Scale sets the size of every experiment. The paper runs 60M keys and
// up to 640 clients on a 10-machine RDMA cluster; this reproduction
// defaults to a laptop-sized dataset, with throughput and latency still
// measured in virtual fabric time so regime boundaries (bandwidth-bound
// vs IOPS-bound vs cache-miss-bound) land where the NIC model puts
// them, not where the host CPU does.
type Scale struct {
	LoadN       int   // items preloaded before measurement
	Ops         int   // total measured operations per run
	ClientSweep []int // simulated client counts for sweep figures
	Clients     int   // client count for fixed-client figures
	MNSize      int   // bytes of remote memory per MN
	Trials      int   // trials for load-factor experiments

	// Obs, when set, threads one observer through every system an
	// experiment builds and every point it runs (chime-bench sets this
	// for -metrics-json / -trace).
	Obs *Observer
}

// SmallScale keeps `go test ./...` fast.
var SmallScale = Scale{
	LoadN:       12000,
	Ops:         6000,
	ClientSweep: []int{8, 64},
	Clients:     16,
	MNSize:      1 << 30,
	Trials:      5,
}

// DefaultScale is what cmd/chime-bench and the bench_test targets use.
// The client sweep reaches past the point where whole-leaf readers
// saturate the NIC (the regime Figures 3b and 12 probe with 640 clients
// on the paper's testbed).
var DefaultScale = Scale{
	LoadN:       100000,
	Ops:         40000,
	ClientSweep: []int{8, 64, 256},
	Clients:     64,
	MNSize:      1536 << 20, // total pool bytes, split across MNs
	Trials:      20,
}

// HeadToHeadSystems is the paper's comparison order.
var HeadToHeadSystems = []string{"CHIME", "Sherman", "ROLEX", "SMART"}

// baseConfig assembles the standard single-testbed system config:
// 100 MB internal-node cache and 30 MB hotspot buffer (§5.1 defaults),
// scaled to the dataset by the same ratio the paper uses when the
// dataset itself is scaled.
func baseConfig(f *dmsim.Fabric, sc Scale, loadKeys []uint64) SystemConfig {
	return SystemConfig{
		Fabric:       f,
		LoadKeys:     loadKeys,
		ValueSize:    8,
		CacheBytes:   cacheBudgetFor(sc),
		HotspotBytes: hotspotBudgetFor(sc),
		Obs:          sc.Obs,
	}
}

// cacheBudgetFor scales the paper's 100 MB / 60M-key cache to the run's
// dataset (≈1.7 bytes per key, floor 2 MB so tiny test runs behave).
func cacheBudgetFor(sc Scale) int64 {
	b := int64(sc.LoadN) * 100 << 20 / 60_000_000
	if b < 2<<20 {
		b = 2 << 20
	}
	return b
}

// hotspotBudgetFor scales the paper's 30 MB hotspot buffer the same way.
func hotspotBudgetFor(sc Scale) int64 {
	b := int64(sc.LoadN) * 30 << 20 / 60_000_000
	if b < 512<<10 {
		b = 512 << 10
	}
	return b
}

// buildSystem stands up one named system on a fresh fabric. Scale.MNSize
// is the memory pool's TOTAL size, split across the MNs; the previous
// system's multi-GB pool is explicitly released first so back-to-back
// experiments fit small hosts.
func buildSystem(name string, sc Scale, mns int, cfgMut func(*SystemConfig)) (System, SystemConfig, error) {
	runtime.GC()
	debug.FreeOSMemory()
	cfg := baseConfig(nil, sc, SortedLoadKeys(sc.LoadN))
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	// The fabric is built after the mutator so offload experiments can
	// size the MN compute model (SystemConfig.MNCPUs/MNServiceNs) — or
	// supply a pre-built fabric outright (scheduler-variant tests).
	if cfg.Fabric == nil {
		cfg.Fabric = OffloadFabric(mns, sc.MNSize/mns, cfg.MNCPUs, cfg.MNServiceNs)
	}
	cfg.Fabric.SetObserver(cfg.Obs.Sink())
	factory, ok := Factories[name]
	if !ok {
		return nil, cfg, fmt.Errorf("bench: unknown system %q", name)
	}
	sys, err := factory(cfg)
	return sys, cfg, err
}

// runPoint is the common "one measured point" helper.
func runPoint(sys System, cfg SystemConfig, mix ycsb.Mix, clients, totalOps int, seed int64) (Result, error) {
	per := totalOps / clients
	if per < 1 {
		per = 1
	}
	return Run(sys, RunConfig{
		Mix:          mix,
		Clients:      clients,
		OpsPerClient: per,
		ValueSize:    cfg.ValueSize,
		KeySpace:     NewKeySpaceFor(cfg.LoadKeys),
		Seed:         seed,
		Obs:          cfg.Obs,
	})
}

// Experiment is a named, runnable reproduction of one paper artifact.
type Experiment struct {
	ID    string // e.g. "fig12", "tab1"
	Title string
	Run   func(w io.Writer, sc Scale) error
}

// Experiments is the registry the CLI and bench targets dispatch on,
// populated by the experiment files' init functions.
var Experiments []Experiment

func register(e Experiment) { Experiments = append(Experiments, e) }

// FindExperiment resolves an experiment by ID.
func FindExperiment(id string) (Experiment, error) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}
