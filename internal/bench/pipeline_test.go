package bench

import (
	"testing"

	"chime/internal/ycsb"
)

// TestMultiGetPipelineSpeedup pins the tentpole acceptance criterion:
// on cold-cache YCSB C, SearchBatch at depth 8 must deliver at least
// 1.8x the virtual-time read throughput of depth 1.
func TestMultiGetPipelineSpeedup(t *testing.T) {
	sc := SmallScale
	sys, cfg, err := buildSystem("CHIME", sc, 1, func(c *SystemConfig) {
		c.CacheBytes = 0
		c.DisableRDWC = true
	})
	if err != nil {
		t.Fatal(err)
	}
	clients := pipelineClients(sc)
	point := func(depth int) MultiGetResult {
		r, err := RunMultiGet(sys, MultiGetConfig{
			Mix:          ycsb.WorkloadC,
			Clients:      clients,
			OpsPerClient: maxInt(sc.Ops/clients, 1),
			Depth:        depth,
			ValueSize:    cfg.ValueSize,
			KeySpace:     NewKeySpaceFor(cfg.LoadKeys),
			Seed:         31,
		})
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		return r
	}
	d1 := point(1)
	d8 := point(8)
	speedup := d8.ThroughputMops / d1.ThroughputMops
	t.Logf("cold-cache YCSB C: depth-1 %.3f Mops, depth-8 %.3f Mops (%.2fx, max inflight %d)",
		d1.ThroughputMops, d8.ThroughputMops, speedup, d8.MaxInflight)
	if speedup < 1.8 {
		t.Fatalf("depth-8 speedup %.2fx < 1.8x", speedup)
	}
	if d8.MaxInflight < 2 {
		t.Fatalf("depth-8 run never had >1 verb in flight (MaxInflight=%d)", d8.MaxInflight)
	}
}

// TestRunMultiGetRejectsRDWC: the combining wrapper hides SearchBatch;
// the harness must say so rather than silently degrade.
func TestRunMultiGetRejectsRDWC(t *testing.T) {
	sc := SmallScale
	sc.LoadN, sc.Ops = 2000, 500
	sys, cfg, err := buildSystem("CHIME", sc, 1, nil) // RDWC enabled
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunMultiGet(sys, MultiGetConfig{
		Mix:          ycsb.WorkloadC,
		Clients:      2,
		OpsPerClient: 10,
		Depth:        4,
		ValueSize:    cfg.ValueSize,
		KeySpace:     NewKeySpaceFor(cfg.LoadKeys),
	})
	if err == nil {
		t.Fatal("RunMultiGet accepted a non-BatchSearcher client")
	}
}

// TestRunMultiGetMixedWorkload drives YCSB B (updates interleaved with
// batched reads) end to end at several depths.
func TestRunMultiGetMixedWorkload(t *testing.T) {
	sc := SmallScale
	sc.LoadN, sc.Ops = 4000, 2000
	for _, name := range []string{"CHIME", "Sherman"} {
		sys, cfg, err := buildSystem(name, sc, 1, func(c *SystemConfig) {
			c.DisableRDWC = true
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, depth := range []int{1, 8} {
			r, err := RunMultiGet(sys, MultiGetConfig{
				Mix:          ycsb.WorkloadB,
				Clients:      4,
				OpsPerClient: sc.Ops / 4,
				Depth:        depth,
				ValueSize:    cfg.ValueSize,
				KeySpace:     NewKeySpaceFor(cfg.LoadKeys),
				Seed:         7,
			})
			if err != nil {
				t.Fatalf("%s depth %d: %v", name, depth, err)
			}
			if r.ThroughputMops <= 0 || r.Ops != int64(sc.Ops) {
				t.Fatalf("%s depth %d: bad result %+v", name, depth, r)
			}
		}
	}
}
