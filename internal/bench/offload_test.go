package bench

import (
	"encoding/json"
	"strings"
	"testing"

	"chime/internal/dmsim"
	"chime/internal/offroute"
	"chime/internal/ycsb"
)

// TestOffloadOffMeansOff pins the "off means off" contract of the
// offload plane end to end: a zero-value SystemConfig (Offload field
// never touched), an explicit ModeOff, and a ModeOff run on a fabric
// whose MN compute model was configured with deliberately odd knobs
// must all be bit-identical — the router nil-checks on every client hot
// path and the idle MN CPUs must not advance any clock. All three must
// report zero offloads, fallbacks and MN utilization.
func TestOffloadOffMeansOff(t *testing.T) {
	sc := tinyScale
	sc.LoadN = 3000

	measure := func(mut func(*SystemConfig)) (Result, string) {
		t.Helper()
		var fab *dmsim.Fabric
		sys, cfg, err := buildSystem("CHIME", sc, 1, func(c *SystemConfig) {
			c.LoadClients = 1
			if mut != nil {
				mut(c)
			}
			fab = c.Fabric
		})
		if err != nil {
			t.Fatal(err)
		}
		if fab == nil {
			fab = cfg.Fabric
		}
		// One client: a write-bearing mix only fingerprints bit-identically
		// single-threaded (contended CAS winners at equal virtual times are
		// host-schedule-dependent — see RunOffload's section comment).
		r, err := runPoint(sys, cfg, ycsb.WorkloadB, 1, 800, 9)
		if err != nil {
			t.Fatal(err)
		}
		return r, offloadFingerprint(r, fab)
	}

	zero, fpZero := measure(nil)
	_, fpOff := measure(func(c *SystemConfig) { c.Offload = offroute.ModeOff })
	_, fpKnobs := measure(func(c *SystemConfig) {
		c.Offload = offroute.ModeOff
		c.MNCPUs = 1
		c.MNServiceNs = 5000 // must be invisible: nothing dispatches to the MN CPU
	})

	if fpZero != fpOff || fpZero != fpKnobs {
		t.Fatalf("ModeOff runs diverged: zero=%s explicit=%s knobs=%s", fpZero, fpOff, fpKnobs)
	}
	if zero.OffloadsPerOp != 0 || zero.MNFallbacksPerOp != 0 || zero.MNUtilization != 0 {
		t.Fatalf("ModeOff run shows MN activity: %+v", zero)
	}
}

// TestOffloadAdaptiveSameSeedBitIdentical pins bench-level determinism
// of the full offload stack under the adaptive router: the same seed
// must produce bit-identical rows (Result + NIC + MN-CPU + frontier
// fingerprint) under both cohort schedulers, on a write-bearing mix.
func TestOffloadAdaptiveSameSeedBitIdentical(t *testing.T) {
	sc := tinyScale
	sc.LoadN = 3000
	for _, sched := range []dmsim.SchedulerKind{dmsim.SchedulerGate, dmsim.SchedulerEventLoop} {
		_, fp1, err := offloadPoint("CHIME", sc, OffloadOptions{}, sched,
			offroute.ModeAdaptive, ycsb.WorkloadB, false, 1, 800)
		if err != nil {
			t.Fatal(err)
		}
		_, fp2, err := offloadPoint("CHIME", sc, OffloadOptions{}, sched,
			offroute.ModeAdaptive, ycsb.WorkloadB, false, 1, 800)
		if err != nil {
			t.Fatal(err)
		}
		if fp1 != fp2 {
			t.Errorf("%s: same-seed adaptive runs diverged: %s vs %s",
				schedulerName(sched), fp1, fp2)
		}
	}
}

// TestRunOffloadSweep smoke-runs the registered experiment shape on a
// reduced matrix: static modes only, and checks the Table-1-style
// accounting — offloaded point ops take ~1 round trip, off rows never
// touch the MN CPU, and every row double-runs bit-identically under
// both schedulers.
func TestRunOffloadSweep(t *testing.T) {
	sc := Scale{LoadN: 2500, Ops: 800, Clients: 4, MNSize: 512 << 20}
	opts := OffloadOptions{Modes: []offroute.Mode{offroute.ModeOff, offroute.ModeAlways}}
	rows, err := RunOffload(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	// 4 sections x 2 static modes x 4 systems x 2 schedulers.
	if want := 4 * 2 * len(HeadToHeadSystems) * 2; len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.ThroughputMops <= 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
		if !r.Reproducible {
			t.Errorf("row not bit-identical across the double run: %+v", r)
		}
		switch r.Mode {
		case "off":
			if r.OffloadsPerOp != 0 || r.MNUtilization != 0 {
				t.Errorf("off row shows MN activity: %+v", r)
			}
		case "on":
			// Read-only sections offload every op; the mixed section's 5%
			// updates may take a non-offloadable path (e.g. SMART's
			// replace-leaf writes), so only require the read share there.
			min := 0.99
			if r.Section == "mixed" {
				min = 0.9
			}
			if r.OffloadsPerOp < min {
				t.Errorf("on row barely offloaded: %+v", r)
			}
			if r.Section == "trips" && r.TripsPerOp > 1.05 {
				t.Errorf("offloaded point op took %.2f trips, want ~1: %+v", r.TripsPerOp, r)
			}
		}
	}

	table := FormatOffloadRows(rows)
	for _, col := range []string{"section", "trips/op", "offl/op", "mncpu%", "repro"} {
		if !strings.Contains(table, col) {
			t.Errorf("table missing column %q:\n%s", col, table)
		}
	}

	blob, err := MarshalOffloadJSON(sc, opts, rows)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Experiment string       `json:"experiment"`
		Rows       []OffloadRow `json:"rows"`
	}
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Experiment != "offload" || len(decoded.Rows) != len(rows) {
		t.Fatalf("JSON round trip mangled: experiment=%q rows=%d", decoded.Experiment, len(decoded.Rows))
	}
}
