// Package bench is the benchmark harness that regenerates every table
// and figure of the CHIME paper's evaluation (§3 and §5) on the
// simulated DM fabric. It wraps the four indexes (CHIME, Sherman,
// SMART, ROLEX) behind one interface, drives them with YCSB workloads
// from multiple simulated clients, and reports throughput in virtual
// time — so bandwidth-bound and IOPS-bound regimes appear exactly where
// the NIC model puts them, independent of host speed.
package bench

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"chime/internal/dmsim"
	"chime/internal/ycsb"
)

// ErrNotFound is the harness's normalized not-found error; adapters map
// each index's own sentinel onto it.
var ErrNotFound = errors.New("bench: key not found")

// Client is the per-simulated-client view of an index under test.
type Client interface {
	Search(key uint64) ([]byte, error)
	Insert(key uint64, value []byte) error
	Update(key uint64, value []byte) error
	Delete(key uint64) error
	// Scan returns the number of items found.
	Scan(start uint64, count int) (int, error)
	// DM exposes the fabric client (virtual clock, traffic counters).
	DM() *dmsim.Client
}

// BatchSearcher is the optional pipelined multi-get interface: clients
// that multiplex several lookups over posted verbs implement it.
// Results are positionally aligned with keys; absent keys report the
// index's not-found sentinel (normalized to ErrNotFound by adapters).
type BatchSearcher interface {
	SearchBatch(keys []uint64, depth int) ([][]byte, []error)
}

// BatchWriter is the optional pipelined write interface: clients whose
// write path drives several keys through posted lock/fetch/write state
// machines implement it. Results align positionally with keys;
// UpdateBatch reports ErrNotFound (normalized) per absent key.
type BatchWriter interface {
	MultiPut(keys []uint64, values [][]byte, depth int) []error
	UpdateBatch(keys []uint64, values [][]byte, depth int) []error
}

// WriteCombineReporter exposes per-client write-combining counters from
// the batch write pipeline (cycles executed, keys absorbed into an
// already-open same-leaf cycle).
type WriteCombineReporter interface {
	WriteCombineStats() (cycles, combinedKeys int64)
}

// System is one index instance under test.
type System interface {
	Name() string
	NewClient() Client
	// CacheBytes reports the computing-side cache consumption after the
	// run: internal-node cache plus any auxiliary structures (hotspot
	// buffer, learned models).
	CacheBytes() int64
}

// SystemConfig carries everything a factory needs to stand up a system.
type SystemConfig struct {
	Fabric *dmsim.Fabric

	// LoadKeys are bulk-loaded before the measured phase. ROLEX trains
	// its models over exactly these keys.
	LoadKeys []uint64

	ValueSize int
	Indirect  bool

	// CacheBytes is the per-CN cache budget (internal nodes).
	CacheBytes int64
	// HotspotBytes is CHIME's hotspot-buffer budget.
	HotspotBytes int64

	// SpanSize / Neighborhood override index defaults when non-zero.
	SpanSize     int
	Neighborhood int

	// Ablations (CHIME only).
	DisablePiggyback   bool
	DisableReplication bool
	DisableSpeculation bool

	// DisableRDWC turns off the read-delegation/write-combining layer
	// (applied to every system by default, as in §5.1).
	DisableRDWC bool

	// LoadClients parallelizes the bulk load (default 8).
	LoadClients int
}

// Factory builds and loads a system.
type Factory func(cfg SystemConfig) (System, error)

// histogram is a log-bucketed latency histogram over virtual
// nanoseconds, good to ~1% relative error.
type histogram struct {
	buckets [1024]int64
	count   int64
}

func bucketOf(ns int64) int {
	if ns < 1 {
		ns = 1
	}
	// 64 log2 major buckets x 16 linear minor buckets.
	l := 63 - int(leadingZeros(uint64(ns)))
	minor := 0
	if l >= 4 {
		minor = int((ns >> (uint(l) - 4)) & 15)
	}
	idx := l*16 + minor
	if idx >= len(histogram{}.buckets) {
		idx = len(histogram{}.buckets) - 1
	}
	return idx
}

func leadingZeros(x uint64) int {
	n := 0
	for i := 63; i >= 0; i-- {
		if x&(1<<uint(i)) != 0 {
			return n
		}
		n++
	}
	return 64
}

func bucketMid(idx int) int64 {
	l := idx / 16
	minor := idx % 16
	if l < 4 {
		return int64(1) << uint(l)
	}
	base := int64(1) << uint(l)
	step := base / 16
	return base + int64(minor)*step + step/2
}

func (h *histogram) add(ns int64) {
	h.buckets[bucketOf(ns)]++
	h.count++
}

func (h *histogram) merge(o *histogram) {
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.count += o.count
}

// quantile returns the latency at the given quantile (0 < q <= 1).
func (h *histogram) quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.count)))
	var cum int64
	for i, b := range h.buckets {
		cum += b
		if cum >= target {
			return bucketMid(i)
		}
	}
	return bucketMid(len(h.buckets) - 1)
}

// RunConfig drives one measured workload phase.
type RunConfig struct {
	Mix          ycsb.Mix
	Clients      int
	OpsPerClient int
	ValueSize    int
	// KeySpace is the shared logical item counter; usually seeded with
	// len(LoadKeys).
	KeySpace *ycsb.KeySpace
	Seed     int64
}

// Result is one measured point.
type Result struct {
	System  string
	Mix     string
	Clients int
	Ops     int64

	// ThroughputMops is ops per virtual microsecond x 1e0 — i.e.
	// million ops per virtual second.
	ThroughputMops float64
	P50Us, P99Us   float64

	TripsPerOp float64
	ReadBytes  float64 // per op
	WriteBytes float64 // per op

	CacheBytes int64
}

// Run executes the workload against the system and aggregates metrics.
func Run(sys System, cfg RunConfig) (Result, error) {
	if cfg.Clients <= 0 || cfg.OpsPerClient <= 0 {
		return Result{}, fmt.Errorf("bench: bad run config %+v", cfg)
	}
	if cfg.KeySpace == nil {
		return Result{}, fmt.Errorf("bench: RunConfig.KeySpace required")
	}

	type clientOut struct {
		hist     *histogram
		ops      int64
		duration int64 // virtual ns
		stats    dmsim.ClientStats
		err      error
	}
	outs := make([]clientOut, cfg.Clients)
	// Create every client before any measured op runs: clients join the
	// fabric at its current virtual-time frontier, and contention only
	// exists when the whole cohort shares one epoch. (Creating clients
	// inside the goroutines would let earlier-scheduled clients push the
	// frontier past later ones, erasing queueing on a serialized host.)
	clients := make([]Client, cfg.Clients)
	for ci := range clients {
		clients[ci] = sys.NewClient()
		// Cohort membership bounds virtual-clock skew between clients so
		// the NIC queueing model stays faithful.
		clients[ci].DM().JoinCohort()
	}
	var wg sync.WaitGroup
	for ci := 0; ci < cfg.Clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cl := clients[ci]
			defer cl.DM().LeaveCohort()
			gen, err := ycsb.NewGenerator(cfg.Mix, cfg.KeySpace, cfg.Seed+int64(ci)*7919)
			if err != nil {
				outs[ci].err = err
				return
			}
			h := &histogram{}
			dm := cl.DM()
			dm.ResetStats()
			start := dm.Now()
			value := make([]byte, cfg.ValueSize)
			for i := 0; i < cfg.OpsPerClient; i++ {
				op := gen.Next()
				t0 := dm.Now()
				var err error
				switch op.Kind {
				case ycsb.OpRead:
					_, err = cl.Search(op.Key)
				case ycsb.OpUpdate:
					err = cl.Update(op.Key, value)
				case ycsb.OpInsert:
					err = cl.Insert(op.Key, value)
				case ycsb.OpScan:
					_, err = cl.Scan(op.Key, op.ScanLen)
				case ycsb.OpReadModifyWrite:
					if _, err = cl.Search(op.Key); err == nil || errors.Is(err, ErrNotFound) {
						err = cl.Update(op.Key, value)
					}
				}
				if err != nil && !errors.Is(err, ErrNotFound) {
					outs[ci].err = fmt.Errorf("bench: client %d op %d (%v %#x): %w", ci, i, op.Kind, op.Key, err)
					return
				}
				h.add(dm.Now() - t0)
			}
			outs[ci] = clientOut{
				hist:     h,
				ops:      int64(cfg.OpsPerClient),
				duration: dm.Now() - start,
				stats:    dm.Stats(),
			}
		}(ci)
	}
	wg.Wait()

	total := &histogram{}
	var ops, maxDur int64
	var stats dmsim.ClientStats
	for _, o := range outs {
		if o.err != nil {
			return Result{}, o.err
		}
		total.merge(o.hist)
		ops += o.ops
		if o.duration > maxDur {
			maxDur = o.duration
		}
		stats.Trips += o.stats.Trips
		stats.BytesRead += o.stats.BytesRead
		stats.BytesWritten += o.stats.BytesWritten
	}
	if maxDur == 0 {
		maxDur = 1
	}
	res := Result{
		System:         sys.Name(),
		Mix:            cfg.Mix.Name,
		Clients:        cfg.Clients,
		Ops:            ops,
		ThroughputMops: float64(ops) * 1e3 / float64(maxDur),
		P50Us:          float64(total.quantile(0.50)) / 1e3,
		P99Us:          float64(total.quantile(0.99)) / 1e3,
		TripsPerOp:     float64(stats.Trips) / float64(ops),
		ReadBytes:      float64(stats.BytesRead) / float64(ops),
		WriteBytes:     float64(stats.BytesWritten) / float64(ops),
		CacheBytes:     sys.CacheBytes(),
	}
	return res, nil
}

// FormatResults renders results as an aligned text table, one row per
// result — the "same rows the paper reports" output format.
func FormatResults(rows []Result) string {
	out := fmt.Sprintf("%-22s %-5s %8s %10s %9s %9s %8s %10s %10s\n",
		"system", "mix", "clients", "Mops", "p50(us)", "p99(us)", "trips/op", "rdB/op", "cacheMB")
	for _, r := range rows {
		out += fmt.Sprintf("%-22s %-5s %8d %10.3f %9.1f %9.1f %8.2f %10.0f %10.2f\n",
			r.System, r.Mix, r.Clients, r.ThroughputMops, r.P50Us, r.P99Us,
			r.TripsPerOp, r.ReadBytes, float64(r.CacheBytes)/1e6)
	}
	return out
}

// SortedLoadKeys returns the first n logical keys in sorted order
// (ROLEX's Build requires sorted input; the others don't care).
func SortedLoadKeys(n int) []uint64 {
	keys := ycsb.LoadKeys(uint64(n))
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
