// Package bench is the benchmark harness that regenerates every table
// and figure of the CHIME paper's evaluation (§3 and §5) on the
// simulated DM fabric. It wraps the four indexes (CHIME, Sherman,
// SMART, ROLEX) behind one interface, drives them with YCSB workloads
// from multiple simulated clients, and reports throughput in virtual
// time — so bandwidth-bound and IOPS-bound regimes appear exactly where
// the NIC model puts them, independent of host speed.
package bench

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"chime/internal/dmsim"
	"chime/internal/obs"
	"chime/internal/offroute"
	"chime/internal/rdwc"
	"chime/internal/ycsb"
)

// ErrNotFound is the harness's normalized not-found error; adapters map
// each index's own sentinel onto it.
var ErrNotFound = errors.New("bench: key not found")

// Client is the per-simulated-client view of an index under test.
type Client interface {
	Search(key uint64) ([]byte, error)
	Insert(key uint64, value []byte) error
	Update(key uint64, value []byte) error
	Delete(key uint64) error
	// Scan returns the number of items found.
	Scan(start uint64, count int) (int, error)
	// DM exposes the fabric client (virtual clock, traffic counters).
	DM() *dmsim.Client
}

// BatchSearcher is the optional pipelined multi-get interface: clients
// that multiplex several lookups over posted verbs implement it.
// Results are positionally aligned with keys; absent keys report the
// index's not-found sentinel (normalized to ErrNotFound by adapters).
type BatchSearcher interface {
	SearchBatch(keys []uint64, depth int) ([][]byte, []error)
}

// BatchWriter is the optional pipelined write interface: clients whose
// write path drives several keys through posted lock/fetch/write state
// machines implement it. Results align positionally with keys;
// UpdateBatch reports ErrNotFound (normalized) per absent key.
type BatchWriter interface {
	MultiPut(keys []uint64, values [][]byte, depth int) []error
	UpdateBatch(keys []uint64, values [][]byte, depth int) []error
}

// WriteCombineReporter exposes per-client write-combining counters from
// the batch write pipeline (cycles executed, keys absorbed into an
// already-open same-leaf cycle).
type WriteCombineReporter interface {
	WriteCombineStats() (cycles, combinedKeys int64)
}

// System is one index instance under test.
type System interface {
	Name() string
	NewClient() Client
	// CacheBytes reports the computing-side cache consumption after the
	// run: internal-node cache plus any auxiliary structures (hotspot
	// buffer, learned models).
	CacheBytes() int64
}

// SystemConfig carries everything a factory needs to stand up a system.
type SystemConfig struct {
	Fabric *dmsim.Fabric

	// LoadKeys are bulk-loaded before the measured phase. ROLEX trains
	// its models over exactly these keys.
	LoadKeys []uint64

	ValueSize int
	Indirect  bool

	// CacheBytes is the per-CN cache budget (internal nodes).
	CacheBytes int64
	// HotspotBytes is CHIME's hotspot-buffer budget.
	HotspotBytes int64

	// SpanSize / Neighborhood override index defaults when non-zero.
	SpanSize     int
	Neighborhood int

	// Ablations (CHIME only).
	DisablePiggyback   bool
	DisableReplication bool
	DisableSpeculation bool

	// DisableRDWC turns off the read-delegation/write-combining layer
	// (applied to every system by default, as in §5.1).
	DisableRDWC bool

	// Offload selects the hybrid one-sided/offload protocol wired into
	// every system's clients: off (zero value) keeps today's pure
	// one-sided paths, on routes every supported op through the MN-side
	// verbs, adaptive lets the per-client EWMA router pick per op (see
	// internal/offroute).
	Offload offroute.Mode

	// MNCPUs / MNServiceNs override the fabric's MN compute model when
	// > 0 (cores per MN; fixed dispatch ns per offloaded program). Only
	// honored by the experiment-level fabric builders — SystemConfig
	// .Fabric arrives pre-built.
	MNCPUs      int
	MNServiceNs int64

	// LeaseLocks switches every system's remote locks to lease words so
	// orphaned locks (crashed holders) are stolen and recovered instead
	// of spinning forever; LeaseNs overrides the lease length when > 0.
	// Used by the faults experiment.
	LeaseLocks bool
	LeaseNs    int64

	// LoadClients parallelizes the bulk load (default 8).
	LoadClients int

	// Obs, when set, is wired into the system's compute node (by the
	// factory) and the fabric's NICs (by buildSystem), enabling the
	// protocol-event counters and per-operation trace spans.
	Obs *Observer
}

// Factory builds and loads a system.
type Factory func(cfg SystemConfig) (System, error)

// Latency histograms are obs.Histogram: the log-bucketed histogram this
// harness grew first now lives in internal/obs, shared with the NIC
// service/queue distributions.

// RunConfig drives one measured workload phase.
type RunConfig struct {
	Mix          ycsb.Mix
	Clients      int
	OpsPerClient int
	ValueSize    int
	// KeySpace is the shared logical item counter; usually seeded with
	// len(LoadKeys).
	KeySpace *ycsb.KeySpace
	Seed     int64

	// Obs, when set, folds the observer's registry deltas into the
	// Result and records the row for the metrics JSON artifact. The
	// system must have been built with the same observer (SystemConfig
	// .Obs) for the protocol-event columns to be populated.
	Obs *Observer
}

// Result is one measured point.
type Result struct {
	System  string
	Mix     string
	Clients int
	Ops     int64

	// ThroughputMops is ops per virtual microsecond x 1e0 — i.e.
	// million ops per virtual second.
	ThroughputMops float64
	P50Us, P99Us   float64

	TripsPerOp float64
	ReadBytes  float64 // per op
	WriteBytes float64 // per op

	CacheBytes int64

	// Observability columns. The combiner, write-combining, cache-hit
	// and NIC-utilization figures are folded on every run; the per-op
	// protocol-event rates (retries, torn reads, lock backoffs, sibling
	// chases, splits, merges, hotspot ratio) come from the observer's
	// registry and stay zero unless the system and run share one
	// RunConfig.Obs.
	RetriesPerOp       float64
	TornReadsPerOp     float64
	LockBackoffsPerOp  float64
	SiblingChasesPerOp float64
	Splits             int64
	Merges             int64
	CacheHitRatio      float64
	HotspotHitRatio    float64
	NICUtilization     float64
	DelegatedReads     int64
	CombinedWrites     int64
	WCCycles           int64
	WCCombinedKeys     int64

	// Fault-plane columns (zero unless faults are injected and the run
	// has an observer): verb-level transient-fault events per op and the
	// lease-recovery totals.
	VerbTimeoutsPerOp float64
	VerbRetriesPerOp  float64
	LeaseExpired      int64
	Recoveries        int64

	// Offload columns (zero with SystemConfig.Offload off): offload
	// verbs posted per op, MN program fallbacks per op, and the fraction
	// of the run's virtual wall time the MN offload cores spent serving
	// programs (1.0 = the bounded MN compute is saturated).
	OffloadsPerOp    float64
	MNFallbacksPerOp float64
	MNUtilization    float64
}

// CacheHitMissReporter is the optional System interface exposing the
// CN-side node-cache counters (cumulative; Run folds the per-run delta).
type CacheHitMissReporter interface {
	CacheHitMiss() (hits, misses int64)
}

// HotspotReporter is the optional System interface exposing CHIME's
// hotspot-buffer counters (cumulative).
type HotspotReporter interface {
	HotspotHitMiss() (hits, lookups int64)
}

// CombinerReporter is the optional System interface exposing the shared
// read-delegation/write-combining layer.
type CombinerReporter interface {
	Combiner() *rdwc.Combiner
}

// Run executes the workload against the system and aggregates metrics.
func Run(sys System, cfg RunConfig) (Result, error) {
	if cfg.Clients <= 0 || cfg.OpsPerClient <= 0 {
		return Result{}, fmt.Errorf("bench: bad run config %+v", cfg)
	}
	if cfg.KeySpace == nil {
		return Result{}, fmt.Errorf("bench: RunConfig.KeySpace required")
	}

	// Before-state for the cumulative sources folded as per-run deltas.
	var snapBefore obs.Snapshot
	if cfg.Obs != nil {
		snapBefore = cfg.Obs.Sink().Registry().Snapshot()
	}
	var dlgBefore, cwBefore int64
	comb, _ := sys.(CombinerReporter)
	if comb != nil && comb.Combiner() != nil {
		dlgBefore, cwBefore = comb.Combiner().Stats()
	}
	var cacheHitsBefore, cacheMissesBefore int64
	cacheRep, _ := sys.(CacheHitMissReporter)
	if cacheRep != nil {
		cacheHitsBefore, cacheMissesBefore = cacheRep.CacheHitMiss()
	}
	var hotHitsBefore, hotLookupsBefore int64
	hotRep, _ := sys.(HotspotReporter)
	if hotRep != nil {
		hotHitsBefore, hotLookupsBefore = hotRep.HotspotHitMiss()
	}

	type clientOut struct {
		hist     *obs.Histogram
		ops      int64
		duration int64 // virtual ns
		stats    dmsim.ClientStats
		err      error
	}
	outs := make([]clientOut, cfg.Clients)
	// Create every client before any measured op runs: clients join the
	// fabric at its current virtual-time frontier, and contention only
	// exists when the whole cohort shares one epoch. (Creating clients
	// inside the goroutines would let earlier-scheduled clients push the
	// frontier past later ones, erasing queueing on a serialized host.)
	clients := make([]Client, cfg.Clients)
	for ci := range clients {
		clients[ci] = sys.NewClient()
		// Cohort membership bounds virtual-clock skew between clients so
		// the NIC queueing model stays faithful.
		clients[ci].DM().JoinCohort()
	}
	fab := clients[0].DM().Fabric()
	// Restart the flight recorder at the measurement frontier so bulk
	// load traffic (which runs through the same instrumented ops) does
	// not pollute attribution, and anchor the timeline ring there.
	if rec := cfg.Obs.Sink().FlightRecorder(); rec != nil {
		rec.Reset(fab.Frontier())
	}
	cfg.Obs.noteTopology(fab.MNs(), fab.MNs()*fab.MNCores())
	nicServedBefore := fab.TotalNICStats().ServedNs
	mnBefore := fab.TotalMNCPUStats()
	var wg sync.WaitGroup
	for ci := 0; ci < cfg.Clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cl := clients[ci]
			defer cl.DM().LeaveCohort()
			gen, err := ycsb.NewGenerator(cfg.Mix, cfg.KeySpace, cfg.Seed+int64(ci)*7919)
			if err != nil {
				outs[ci].err = err
				return
			}
			h := obs.NewHistogram()
			dm := cl.DM()
			dm.ResetStats()
			start := dm.Now()
			value := make([]byte, cfg.ValueSize)
			for i := 0; i < cfg.OpsPerClient; i++ {
				op := gen.Next()
				t0 := dm.Now()
				var err error
				switch op.Kind {
				case ycsb.OpRead:
					_, err = cl.Search(op.Key)
				case ycsb.OpUpdate:
					err = cl.Update(op.Key, value)
				case ycsb.OpInsert:
					err = cl.Insert(op.Key, value)
				case ycsb.OpScan:
					_, err = cl.Scan(op.Key, op.ScanLen)
				case ycsb.OpReadModifyWrite:
					if _, err = cl.Search(op.Key); err == nil || errors.Is(err, ErrNotFound) {
						err = cl.Update(op.Key, value)
					}
				}
				if err != nil && !errors.Is(err, ErrNotFound) {
					outs[ci].err = fmt.Errorf("bench: client %d op %d (%v %#x): %w", ci, i, op.Kind, op.Key, err)
					return
				}
				h.Observe(dm.Now() - t0)
			}
			outs[ci] = clientOut{
				hist:     h,
				ops:      int64(cfg.OpsPerClient),
				duration: dm.Now() - start,
				stats:    dm.Stats(),
			}
		}(ci)
	}
	wg.Wait()

	total := obs.NewHistogram()
	var ops, maxDur int64
	var stats dmsim.ClientStats
	for _, o := range outs {
		if o.err != nil {
			return Result{}, o.err
		}
		total.Merge(o.hist)
		ops += o.ops
		if o.duration > maxDur {
			maxDur = o.duration
		}
		stats.Trips += o.stats.Trips
		stats.BytesRead += o.stats.BytesRead
		stats.BytesWritten += o.stats.BytesWritten
		stats.Offloads += o.stats.Offloads
	}
	if maxDur == 0 {
		maxDur = 1
	}
	res := Result{
		System:         sys.Name(),
		Mix:            cfg.Mix.Name,
		Clients:        cfg.Clients,
		Ops:            ops,
		ThroughputMops: float64(ops) * 1e3 / float64(maxDur),
		P50Us:          float64(total.Quantile(0.50)) / 1e3,
		P99Us:          float64(total.Quantile(0.99)) / 1e3,
		TripsPerOp:     float64(stats.Trips) / float64(ops),
		ReadBytes:      float64(stats.BytesRead) / float64(ops),
		WriteBytes:     float64(stats.BytesWritten) / float64(ops),
		CacheBytes:     sys.CacheBytes(),
	}

	// NIC utilization: fraction of the run's virtual wall time the NICs
	// spent serving verbs (issued by anyone sharing the fabric, i.e.
	// this cohort).
	nicServed := fab.TotalNICStats().ServedNs - nicServedBefore
	res.NICUtilization = float64(nicServed) / float64(int64(fab.MNs())*maxDur)

	// MN compute plane: offload verbs per op and the bounded MN cores'
	// utilization over the same virtual wall time.
	mnAfter := fab.TotalMNCPUStats()
	res.OffloadsPerOp = float64(stats.Offloads) / float64(ops)
	res.MNFallbacksPerOp = float64(mnAfter.Fallbacks-mnBefore.Fallbacks) / float64(ops)
	res.MNUtilization = float64(mnAfter.BusyNs-mnBefore.BusyNs) /
		float64(int64(fab.MNs()*fab.MNCores())*maxDur)

	// Per-client write-combining counters (rdwcClient forwards to the
	// wrapped index client).
	for _, cl := range clients {
		if wr, ok := cl.(WriteCombineReporter); ok {
			cyc, comb := wr.WriteCombineStats()
			res.WCCycles += cyc
			res.WCCombinedKeys += comb
		}
	}

	if comb != nil && comb.Combiner() != nil {
		dlg, cw := comb.Combiner().Stats()
		res.DelegatedReads = dlg - dlgBefore
		res.CombinedWrites = cw - cwBefore
	}
	if cacheRep != nil {
		h, m := cacheRep.CacheHitMiss()
		if dh, dm := h-cacheHitsBefore, m-cacheMissesBefore; dh+dm > 0 {
			res.CacheHitRatio = float64(dh) / float64(dh+dm)
		}
	}
	if hotRep != nil {
		h, l := hotRep.HotspotHitMiss()
		if dh, dl := h-hotHitsBefore, l-hotLookupsBefore; dl > 0 {
			res.HotspotHitRatio = float64(dh) / float64(dl)
		}
	}
	if cfg.Obs != nil {
		snap := cfg.Obs.Sink().Registry().Snapshot()
		perOp := func(name string) float64 {
			//lint:allow obsnames every caller below passes a Name* schema constant
			return float64(snap.CounterDelta(snapBefore, name)) / float64(ops)
		}
		res.RetriesPerOp = perOp(obs.NameRetry)
		res.TornReadsPerOp = perOp(obs.NameTornRead)
		res.LockBackoffsPerOp = perOp(obs.NameLockBackoff)
		res.SiblingChasesPerOp = perOp(obs.NameSiblingChase)
		res.Splits = snap.CounterDelta(snapBefore, obs.NameSplit)
		res.Merges = snap.CounterDelta(snapBefore, obs.NameMerge)
		res.VerbTimeoutsPerOp = perOp(dmsim.NameVerbTimeout)
		res.VerbRetriesPerOp = perOp(dmsim.NameVerbRetry)
		res.LeaseExpired = snap.CounterDelta(snapBefore, obs.NameLeaseExpired)
		res.Recoveries = snap.CounterDelta(snapBefore, obs.NameRecovery)
		cfg.Obs.record(res)
	}
	return res, nil
}

// FormatObsResults renders the observability columns Run folds into each
// row: protocol-event rates per op, cache/hotspot hit ratios, NIC
// utilization and the read-delegation/write-combining totals.
func FormatObsResults(rows []Result) string {
	out := fmt.Sprintf("%-22s %-5s %7s %8s %9s %9s %9s %9s %7s %7s %6s %8s %8s\n",
		"system", "mix", "clients", "Mops", "retry/op", "torn/op", "lockbk/op", "chase/op",
		"cache%", "hot%", "nic%", "dlgReads", "combWr")
	for _, r := range rows {
		out += fmt.Sprintf("%-22s %-5s %7d %8.3f %9.4f %9.4f %9.4f %9.4f %7.1f %7.1f %6.1f %8d %8d\n",
			r.System, r.Mix, r.Clients, r.ThroughputMops,
			r.RetriesPerOp, r.TornReadsPerOp, r.LockBackoffsPerOp, r.SiblingChasesPerOp,
			r.CacheHitRatio*100, r.HotspotHitRatio*100, r.NICUtilization*100,
			r.DelegatedReads, r.CombinedWrites)
	}
	return out
}

// FormatResults renders results as an aligned text table, one row per
// result — the "same rows the paper reports" output format.
func FormatResults(rows []Result) string {
	out := fmt.Sprintf("%-22s %-5s %8s %10s %9s %9s %8s %10s %10s\n",
		"system", "mix", "clients", "Mops", "p50(us)", "p99(us)", "trips/op", "rdB/op", "cacheMB")
	for _, r := range rows {
		out += fmt.Sprintf("%-22s %-5s %8d %10.3f %9.1f %9.1f %8.2f %10.0f %10.2f\n",
			r.System, r.Mix, r.Clients, r.ThroughputMops, r.P50Us, r.P99Us,
			r.TripsPerOp, r.ReadBytes, float64(r.CacheBytes)/1e6)
	}
	return out
}

// SortedLoadKeys returns the first n logical keys in sorted order
// (ROLEX's Build requires sorted input; the others don't care).
func SortedLoadKeys(n int) []uint64 {
	keys := ycsb.LoadKeys(uint64(n))
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
