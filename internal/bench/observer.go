package bench

import (
	"encoding/json"
	"io"
	"sync"

	"chime/internal/obs"
)

// MetricsSchema identifies the metrics JSON artifact layout emitted by
// Observer.MetricsJSON (and chime-bench -metrics-json). v2 renamed the
// NIC instruments from nic.* to dm.nic.* so every instrument name fits
// the ^(dm|idx|fault|bench)\. namespace enforced by the obsnames
// analyzer (cmd/chimelint). v3 adds the MN compute plane's dm.mn.*
// instruments (dm.mn.service_ns, dm.mn.queue_ns, dm.mn.queue_depth,
// dm.mn.offload, dm.mn.fallback) and the offload columns of Result.
// v4 adds the optional flight section (per-op-class tail-latency
// attribution plus the virtual-time timeline) emitted when the flight
// recorder is enabled (chime-bench -flightrec).
const MetricsSchema = "chime-bench/metrics/v4"

// Observer ties one obs.Sink to the bench harness: systems built with
// SystemConfig.Obs count protocol events (and optionally trace spans)
// into it, and every Run sharing the observer folds per-run registry
// deltas into its Result and records the row for the metrics artifact.
// A nil *Observer disables everything.
type Observer struct {
	sink *obs.Sink

	mu   sync.Mutex
	rows []ObsRow

	// Fabric topology captured by the last Run, for normalizing the
	// flight recorder's timeline utilization figures.
	nics    int
	mnCores int
}

// ObsRow pairs one measured result with the cumulative registry
// snapshot taken when that run finished; consecutive rows can be
// differenced for per-run histogram movement.
type ObsRow struct {
	Result   Result       `json:"result"`
	Registry obs.Snapshot `json:"registry"`
}

// NewObserver returns an observer with a fresh registry; with trace set
// it also buffers Chrome trace_event spans (see WriteTrace).
func NewObserver(trace bool) *Observer {
	return &Observer{sink: obs.NewSink(trace)}
}

// EnableFlightRecorder attaches a per-op flight recorder to the
// observer's sink. Must be called before systems and fabrics are built
// with this observer — clients capture the recorder at creation. Nil-safe
// no-op on a nil observer.
func (o *Observer) EnableFlightRecorder(cfg obs.FlightConfig) {
	if o == nil {
		return
	}
	o.sink.SetFlightRecorder(obs.NewFlightRecorder(cfg))
}

// Sink exposes the underlying sink for wiring into compute nodes and
// fabrics. Nil-safe: a nil observer yields a nil sink, which every
// SetObserver treats as "off".
func (o *Observer) Sink() *obs.Sink {
	if o == nil {
		return nil
	}
	return o.sink
}

func (o *Observer) record(r Result) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.rows = append(o.rows, ObsRow{Result: r, Registry: o.sink.Registry().Snapshot()})
	o.mu.Unlock()
}

func (o *Observer) noteTopology(nics, mnCores int) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.nics, o.mnCores = nics, mnCores
	o.mu.Unlock()
}

// FlightReport renders the attached flight recorder's attribution and
// timeline reports, normalized by the last Run's fabric topology. Nil
// when no recorder is attached.
func (o *Observer) FlightReport() *FlightSection {
	if o == nil {
		return nil
	}
	rec := o.sink.FlightRecorder()
	if rec == nil {
		return nil
	}
	o.mu.Lock()
	nics, cores := o.nics, o.mnCores
	o.mu.Unlock()
	return &FlightSection{
		Attribution: rec.Attribution(),
		Timeline:    rec.Timeline(nics, cores),
	}
}

// FlightSection is the metrics-v4 flight block: per-op-class latency
// attribution plus the windowed virtual-time timeline. The recorder is
// reset at the start of every measured Run, so the section reflects the
// observer's most recent run.
type FlightSection struct {
	Attribution obs.AttributionReport `json:"attribution"`
	Timeline    obs.TimelineReport    `json:"timeline"`
}

// Rows returns the recorded result rows in completion order.
func (o *Observer) Rows() []ObsRow {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]ObsRow(nil), o.rows...)
}

// MetricsJSON renders the metrics artifact: the schema tag, every
// recorded row, the final registry snapshot (counters, gauges and
// histogram summaries, including the NIC service/queue distributions)
// and the trace buffer's fill level.
func (o *Observer) MetricsJSON() ([]byte, error) {
	out := struct {
		Schema       string         `json:"schema"`
		Rows         []ObsRow       `json:"rows"`
		Registry     obs.Snapshot   `json:"registry"`
		TraceEvents  int            `json:"trace_events"`
		TraceDropped int64          `json:"trace_dropped"`
		Flight       *FlightSection `json:"flight,omitempty"`
	}{
		Schema:       MetricsSchema,
		Rows:         o.Rows(),
		Registry:     o.sink.Registry().Snapshot(),
		TraceEvents:  o.sink.Tracer().Len(),
		TraceDropped: o.sink.Tracer().Dropped(),
		Flight:       o.FlightReport(),
	}
	if out.Rows == nil {
		out.Rows = []ObsRow{}
	}
	return json.MarshalIndent(out, "", "  ")
}

// WriteTrace writes the buffered spans in Chrome trace_event JSON
// (about:tracing / Perfetto). An untraced observer writes an empty but
// valid trace.
func (o *Observer) WriteTrace(w io.Writer) error {
	return o.sink.Tracer().WriteJSON(w)
}
