package bench

import (
	"fmt"
	"io"

	"chime/internal/hopscotch"
	"chime/internal/ycsb"
)

// Sensitivity experiments (§5.4): workload skewness, cache size, value
// size, span size, neighborhood size, hotspot buffer size.

func init() {
	register(Experiment{ID: "fig18a", Title: "Workload skewness sweep", Run: Fig18a})
	register(Experiment{ID: "fig18b", Title: "Cache size sweep", Run: Fig18b})
	register(Experiment{ID: "fig18c", Title: "Inline value size sweep", Run: Fig18c})
	register(Experiment{ID: "fig18d", Title: "Indirect value size sweep", Run: Fig18d})
	register(Experiment{ID: "fig18e", Title: "Span size sweep", Run: Fig18e})
	register(Experiment{ID: "fig18f", Title: "Neighborhood size sweep", Run: Fig18f})
	register(Experiment{ID: "fig19a", Title: "Span size vs cache and load factor", Run: Fig19a})
	register(Experiment{ID: "fig19b", Title: "Neighborhood size vs max load factor", Run: Fig19b})
	register(Experiment{ID: "fig19c", Title: "Hotspot buffer size sweep", Run: Fig19c})
}

// Fig18a reproduces Figure 18a: a 50/50 search+update workload with
// Zipfian skewness from 0.5 to 0.99 across all four indexes.
func Fig18a(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# Figure 18a: skewness sweep (50%% search / 50%% update)\n")
	var rows []Result
	for _, name := range HeadToHeadSystems {
		sys, cfg, err := buildSystem(name, sc, 1, nil)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		for _, theta := range []float64{0.5, 0.8, 0.9, 0.99} {
			mix := ycsb.Mix{Name: fmt.Sprintf("z%.2f", theta), ReadPct: 0.5, UpdatePct: 0.5, Dist: ycsb.DistZipfian, Theta: theta}
			r, err := runPoint(sys, cfg, mix, sc.Clients, sc.Ops, 18)
			if err != nil {
				return fmt.Errorf("%s theta=%.2f: %w", name, theta, err)
			}
			rows = append(rows, r)
		}
	}
	fmt.Fprint(w, FormatResults(rows))
	return nil
}

// Fig18b reproduces Figure 18b: YCSB C throughput as the per-CN cache
// budget grows. The KV-contiguous indexes peak with small caches; SMART
// needs far more before its remote traversals disappear.
func Fig18b(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# Figure 18b: cache size sweep, YCSB C\n")
	base := cacheBudgetFor(sc)
	var rows []Result
	for _, name := range HeadToHeadSystems {
		for _, mult := range []int64{0, 1, 4, 16, 64} {
			budget := base * mult / 4
			sys, cfg, err := buildSystem(name, sc, 1, func(c *SystemConfig) {
				c.CacheBytes = budget
			})
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			r, err := runPoint(sys, cfg, ycsb.WorkloadC, sc.Clients, sc.Ops, 19)
			if err != nil {
				return fmt.Errorf("%s cache=%d: %w", name, budget, err)
			}
			r.System = fmt.Sprintf("%s/%dKB", name, budget>>10)
			rows = append(rows, r)
		}
	}
	fmt.Fprint(w, FormatResults(rows))
	return nil
}

// valueSizeSweep runs YCSB C over growing value sizes.
func valueSizeSweep(w io.Writer, sc Scale, indirect bool, seed int64) error {
	var rows []Result
	for _, name := range HeadToHeadSystems {
		for _, vs := range []int{8, 64, 128, 256} {
			sys, cfg, err := buildSystem(name, sc, 1, func(c *SystemConfig) {
				c.ValueSize = vs
				c.Indirect = indirect && name != "SMART"
			})
			if err != nil {
				return fmt.Errorf("%s vs=%d: %w", name, vs, err)
			}
			r, err := runPoint(sys, cfg, ycsb.WorkloadC, sc.Clients, sc.Ops, seed)
			if err != nil {
				return fmt.Errorf("%s vs=%d: %w", name, vs, err)
			}
			r.System = fmt.Sprintf("%s/%dB", name, vs)
			rows = append(rows, r)
		}
	}
	fmt.Fprint(w, FormatResults(rows))
	return nil
}

// Fig18c reproduces Figure 18c: inline value size sweep. KV-contiguous
// indexes degrade steeply (leaf/neighborhood bytes grow with the
// value); SMART barely moves.
func Fig18c(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# Figure 18c: inline value size sweep, YCSB C\n")
	return valueSizeSweep(w, sc, false, 20)
}

// Fig18d reproduces Figure 18d: the same sweep with indirect values —
// leaf traffic no longer grows with the value, flattening the decline.
func Fig18d(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# Figure 18d: indirect value size sweep, YCSB C\n")
	return valueSizeSweep(w, sc, true, 21)
}

// Fig18e reproduces Figure 18e: span size sweep. Sherman's and ROLEX's
// read amplification grows with the span; CHIME only reads
// neighborhoods, so it is nearly flat (with a small penalty at tiny
// spans from wrap-around reads).
func Fig18e(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# Figure 18e: span size sweep, YCSB C\n")
	var rows []Result
	for _, name := range []string{"CHIME", "Sherman", "ROLEX"} {
		for _, span := range []int{8, 16, 64, 128, 256} {
			sys, cfg, err := buildSystem(name, sc, 1, func(c *SystemConfig) {
				c.SpanSize = span
			})
			if err != nil {
				return fmt.Errorf("%s span=%d: %w", name, span, err)
			}
			r, err := runPoint(sys, cfg, ycsb.WorkloadC, sc.Clients, sc.Ops, 22)
			if err != nil {
				return fmt.Errorf("%s span=%d: %w", name, span, err)
			}
			r.System = fmt.Sprintf("%s/s%d", name, span)
			rows = append(rows, r)
		}
	}
	fmt.Fprint(w, FormatResults(rows))
	return nil
}

// Fig18f reproduces Figure 18f: CHIME's neighborhood size sweep. Larger
// H costs moderate extra read bandwidth but raises the leaf load
// factor (Figure 19b).
func Fig18f(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# Figure 18f: neighborhood size sweep, YCSB C (CHIME)\n")
	var rows []Result
	for _, h := range []int{2, 4, 8, 16} {
		sys, cfg, err := buildSystem("CHIME", sc, 1, func(c *SystemConfig) {
			c.Neighborhood = h
		})
		if err != nil {
			return fmt.Errorf("H=%d: %w", h, err)
		}
		r, err := runPoint(sys, cfg, ycsb.WorkloadC, sc.Clients, sc.Ops, 23)
		if err != nil {
			return fmt.Errorf("H=%d: %w", h, err)
		}
		r.System = fmt.Sprintf("CHIME/H%d", h)
		rows = append(rows, r)
	}
	fmt.Fprint(w, FormatResults(rows))
	return nil
}

// Fig19a reproduces Figure 19a: span size vs cache consumption (one
// parent entry amortized over span keys) and vs the hopscotch leaf's
// maximum load factor at H=8.
func Fig19a(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# Figure 19a: span size vs cache consumption and max load factor (H=8)\n")
	fmt.Fprintf(w, "%-8s %16s %14s\n", "span", "cacheB/key", "max-load")
	for _, span := range []int{16, 32, 64, 128, 256, 512} {
		lf := hopscotch.MaxLoadFactorHopscotch(span, 8, sc.Trials, 7)
		fmt.Fprintf(w, "%-8d %16.3f %14.3f\n", span, 17.0/float64(span), lf)
	}
	return nil
}

// Fig19b reproduces Figure 19b: neighborhood size vs maximum load
// factor on a span-64 leaf.
func Fig19b(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# Figure 19b: neighborhood size vs max load factor (span 64)\n")
	fmt.Fprintf(w, "%-8s %14s\n", "H", "max-load")
	for _, h := range []int{2, 4, 8, 16} {
		lf := hopscotch.MaxLoadFactorHopscotch(64, h, sc.Trials, 8)
		fmt.Fprintf(w, "%-8d %14.3f\n", h, lf)
	}
	return nil
}

// Fig19c reproduces Figure 19c: hotspot buffer size vs throughput and
// hit ratio under skewed YCSB C.
func Fig19c(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# Figure 19c: hotspot buffer size sweep, YCSB C\n")
	fmt.Fprintf(w, "%-12s %10s %12s %12s %14s\n", "bufferKB", "Mops", "p50(us)", "hit-ratio", "spec-correct")
	base := hotspotBudgetFor(sc)
	for _, mult := range []int64{0, 1, 2, 4} {
		budget := base * mult / 2
		sys, cfg, err := buildSystem("CHIME", sc, 1, func(c *SystemConfig) {
			c.HotspotBytes = budget
			if budget == 0 {
				c.DisableSpeculation = true
			}
		})
		if err != nil {
			return err
		}
		r, err := runPoint(sys, cfg, ycsb.WorkloadC, sc.Clients, sc.Ops, 24)
		if err != nil {
			return err
		}
		hs := sys.(*chimeSystem).cn.HotspotStats()
		hit, correct := 0.0, 0.0
		if hs.Lookups > 0 {
			hit = float64(hs.Hits) / float64(hs.Lookups)
		}
		if hs.Speculations > 0 {
			correct = float64(hs.Correct) / float64(hs.Speculations)
		}
		fmt.Fprintf(w, "%-12d %10.3f %12.1f %12.3f %14.3f\n",
			budget>>10, r.ThroughputMops, r.P50Us, hit, correct)
	}
	return nil
}
