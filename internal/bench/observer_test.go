package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"chime/internal/obs"
	"chime/internal/ycsb"
)

// TestRunFoldsObsColumns runs CHIME under an observer and checks that
// the observability columns land in the Result and the metrics/trace
// artifacts come out well-formed.
func TestRunFoldsObsColumns(t *testing.T) {
	sc := tinyScale
	sc.Obs = NewObserver(true)
	sys, cfg, err := buildSystem("CHIME", sc, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := runPoint(sys, cfg, ycsb.WorkloadA, 4, 1200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.NICUtilization <= 0 || r.NICUtilization > 1 {
		t.Fatalf("NIC utilization %f out of (0,1]", r.NICUtilization)
	}
	if r.CacheHitRatio <= 0 || r.CacheHitRatio > 1 {
		t.Fatalf("cache hit ratio %f out of (0,1]", r.CacheHitRatio)
	}
	if r.TornReadsPerOp < 0 || r.RetriesPerOp < 0 {
		t.Fatalf("negative event rates: %+v", r)
	}

	rows := sc.Obs.Rows()
	if len(rows) != 1 {
		t.Fatalf("observer recorded %d rows, want 1", len(rows))
	}
	if rows[0].Registry.Counters[obs.NameTornRead] < 0 {
		t.Fatal("snapshot missing torn-read counter")
	}

	blob, err := sc.Obs.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Schema      string   `json:"schema"`
		Rows        []ObsRow `json:"rows"`
		TraceEvents int      `json:"trace_events"`
	}
	if err := json.Unmarshal(blob, &parsed); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	if parsed.Schema != MetricsSchema || len(parsed.Rows) != 1 {
		t.Fatalf("metrics artifact: schema=%q rows=%d", parsed.Schema, len(parsed.Rows))
	}
	if parsed.TraceEvents == 0 {
		t.Fatal("traced run buffered no events")
	}

	var buf bytes.Buffer
	if err := sc.Obs.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace artifact is empty")
	}
	if !strings.Contains(buf.String(), "chime.search") {
		t.Fatal("trace lacks chime.search spans")
	}
}

// TestObserverDoesNotPerturbVirtualTime is the end-to-end no-regression
// guard: a deterministic single-client run must produce bit-identical
// virtual-time results with and without a (tracing) observer attached —
// instrumentation records, it never advances a clock.
func TestObserverDoesNotPerturbVirtualTime(t *testing.T) {
	sc := tinyScale
	sc.LoadN = 3000

	measure := func(o *Observer) Result {
		t.Helper()
		subScale := sc
		subScale.Obs = o
		sys, cfg, err := buildSystem("CHIME", subScale, 1, func(c *SystemConfig) {
			c.LoadClients = 1 // single-threaded: fully deterministic
		})
		if err != nil {
			t.Fatal(err)
		}
		r, err := runPoint(sys, cfg, ycsb.WorkloadA, 1, 800, 9)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	plain := measure(nil)
	observed := measure(NewObserver(true))
	if plain.Ops != observed.Ops ||
		plain.ThroughputMops != observed.ThroughputMops ||
		plain.P50Us != observed.P50Us ||
		plain.P99Us != observed.P99Us ||
		plain.TripsPerOp != observed.TripsPerOp {
		t.Fatalf("observer changed virtual-time results:\nplain:    %+v\nobserved: %+v", plain, observed)
	}
}

// TestRunFoldsCombinerColumns checks the read-delegation /
// write-combining counters appear in standard rows without any
// observer, on every system that supports them.
func TestRunFoldsCombinerColumns(t *testing.T) {
	for _, name := range HeadToHeadSystems {
		t.Run(name, func(t *testing.T) {
			sys, cfg, err := buildSystem(name, tinyScale, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			mix := ycsb.WorkloadA
			r, err := runPoint(sys, cfg, mix, 8, 2000, 7)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := sys.(CombinerReporter); !ok {
				t.Fatalf("%s does not expose its combiner", name)
			}
			if r.DelegatedReads < 0 || r.CombinedWrites < 0 {
				t.Fatalf("negative combiner counters: %+v", r)
			}
			// Zipfian YCSB A from 8 clients reliably coalesces at least
			// one read or write on every system.
			if r.DelegatedReads+r.CombinedWrites == 0 {
				t.Fatalf("%s: no delegation/combining observed on YCSB A: %+v", name, r)
			}
		})
	}
}

func TestFormatObsResults(t *testing.T) {
	s := FormatObsResults([]Result{{
		System: "X", Mix: "A", Clients: 4,
		ThroughputMops: 1.5, RetriesPerOp: 0.25, CacheHitRatio: 0.9,
		NICUtilization: 0.42, DelegatedReads: 7,
	}})
	for _, want := range []string{"X", "0.2500", "90.0", "42.0", "7"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}
