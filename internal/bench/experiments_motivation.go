package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"

	"chime/internal/dmsim"
	"chime/internal/hopscotch"
	"chime/internal/ycsb"
)

// Motivation experiments (§3 of the paper): the two trade-offs and the
// metadata/neighborhood micro-benchmarks.

func init() {
	register(Experiment{ID: "fig3a", Title: "Trade-off: cache consumption vs read amplification", Run: Fig3a})
	register(Experiment{ID: "fig3b", Title: "Range indexes with limited bandwidth (1 MN)", Run: Fig3b})
	register(Experiment{ID: "fig3c", Title: "Range indexes with limited caches", Run: Fig3c})
	register(Experiment{ID: "fig3d", Title: "Hashing schemes: max load factor vs amplification", Run: Fig3d})
	register(Experiment{ID: "fig4a", Title: "Vacancy bitmap access overhead", Run: Fig4a})
	register(Experiment{ID: "fig4b", Title: "Leaf metadata access overhead", Run: Fig4b})
	register(Experiment{ID: "fig4c", Title: "Neighborhood size read throughput", Run: Fig4c})
}

// Fig3a reproduces Figure 3a: the analytic trade-off between
// computing-side cache bytes per key and the read amplification factor,
// for each index design at each span size, plus the measured cache
// consumption at this run's scale.
func Fig3a(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# Figure 3a: cache consumption vs read amplification (analytic, per key)\n")
	fmt.Fprintf(w, "%-10s %8s %12s %14s\n", "index", "span", "amp-factor", "cacheB/key")
	// B+ tree (Sherman): amplification = span; cache = internal nodes
	// ≈ (pivot+pointer) per leaf / span keys per leaf.
	for _, span := range []int{8, 16, 32, 64, 128, 256, 512} {
		// One parent routing entry (pivot + pointer ≈ 17B) covers a
		// whole span-sized leaf, so cache cost amortizes to 17/span.
		fmt.Fprintf(w, "%-10s %8d %12d %14.3f\n", "B+tree", span, span, 17.0/float64(span))
	}
	// Learned index (ROLEX): amplification = 2*span (model error = span);
	// cache = model segments + fences ≈ 32B per leaf group.
	for _, span := range []int{8, 16, 32, 64} {
		fmt.Fprintf(w, "%-10s %8d %12d %14.3f\n", "learned", span, 2*span, 32.0/float64(span))
	}
	// Radix tree (SMART): amplification 1; cache ≈ a slot per key plus
	// its share of node headers (measured ~16-50B/key; see fig14).
	fmt.Fprintf(w, "%-10s %8s %12d %14s\n", "radix", "-", 1, ">=16 (per-key addresses)")
	// CHIME: amplification = neighborhood H; cache like a B+ tree.
	for _, h := range []int{2, 4, 8, 16} {
		fmt.Fprintf(w, "%-10s %8s %12d %14.3f  (span 64, H=%d)\n", "CHIME", "64", h, 17.0/64.0, h)
	}
	return nil
}

// Fig3b reproduces Figure 3b: read-only throughput under limited
// bandwidth — one MN, caches big enough for every internal node. The
// KV-contiguous indexes saturate the NIC's bandwidth early; SMART (and
// CHIME) push much further.
func Fig3b(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# Figure 3b: YCSB C, 1 MN (limited bandwidth), ample caches\n")
	var rows []Result
	for _, name := range HeadToHeadSystems {
		sys, cfg, err := buildSystem(name, sc, 1, func(c *SystemConfig) {
			c.CacheBytes = 1 << 30 // ample: cache everything
			c.HotspotBytes = hotspotBudgetFor(sc)
		})
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		for _, clients := range sc.ClientSweep {
			r, err := runPoint(sys, cfg, ycsb.WorkloadC, clients, sc.Ops, 1)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			rows = append(rows, r)
		}
	}
	fmt.Fprint(w, FormatResults(rows))
	return nil
}

// Fig3c reproduces Figure 3c: read-only throughput under limited caches
// — several MNs (ample bandwidth), small per-CN caches. SMART's
// internal nodes no longer fit, so its remote traversals dominate.
func Fig3c(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# Figure 3c: YCSB C, 4 MNs (ample bandwidth), limited caches\n")
	// The paper's limited-cache point is 100 MB for 60M keys = ~1.7
	// bytes per key: plenty for the KV-contiguous indexes' internal
	// nodes, a 25x shortfall for SMART's per-key addresses. Apply the
	// same per-key budget (no floor) at this run's scale.
	limited := int64(sc.LoadN) * 100 << 20 / 60_000_000
	var rows []Result
	for _, name := range HeadToHeadSystems {
		sys, cfg, err := buildSystem(name, sc, 4, func(c *SystemConfig) {
			c.CacheBytes = limited
		})
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		for _, clients := range sc.ClientSweep {
			r, err := runPoint(sys, cfg, ycsb.WorkloadC, clients, sc.Ops, 2)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			rows = append(rows, r)
		}
	}
	fmt.Fprint(w, FormatResults(rows))
	return nil
}

// Fig3d reproduces Figure 3d: maximum load factor vs read amplification
// for the DM hashing schemes, on 128-entry tables.
func Fig3d(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# Figure 3d: hashing schemes, 128-entry tables, %d trials\n", sc.Trials)
	fmt.Fprintf(w, "%-14s %10s %14s\n", "scheme", "amp", "max-load")
	for _, r := range hopscotch.Figure3d(128, sc.Trials, 42) {
		fmt.Fprintf(w, "%-14s %10d %14.3f\n", r.Name, r.ReadAmp, r.MaxLoadFactor)
	}
	return nil
}

// Fig4a reproduces Figure 4a: the cost of reading the vacancy bitmap
// with a dedicated access vs piggybacked on the lock (insert-heavy
// workload on CHIME with the piggyback ablation toggled).
func Fig4a(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# Figure 4a: vacancy bitmap access (inserts; piggyback on/off)\n")
	var rows []Result
	for _, variant := range []struct {
		label   string
		disable bool
	}{{"piggybacked", false}, {"dedicated-access", true}} {
		sys, cfg, err := buildSystem("CHIME", sc, 1, func(c *SystemConfig) {
			c.DisablePiggyback = variant.disable
		})
		if err != nil {
			return err
		}
		r, err := runPoint(sys, cfg, ycsb.WorkloadLoad, sc.Clients, sc.Ops, 3)
		if err != nil {
			return err
		}
		r.System = "CHIME/" + variant.label
		rows = append(rows, r)
	}
	fmt.Fprint(w, FormatResults(rows))
	return nil
}

// Fig4b reproduces Figure 4b: the cost of a dedicated leaf-metadata READ
// vs replicated metadata (read-only workload with the replication
// ablation toggled).
func Fig4b(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# Figure 4b: leaf metadata access (reads; replication on/off)\n")
	var rows []Result
	for _, variant := range []struct {
		label   string
		disable bool
	}{{"replicated", false}, {"dedicated-access", true}} {
		sys, cfg, err := buildSystem("CHIME", sc, 1, func(c *SystemConfig) {
			c.DisableReplication = variant.disable
		})
		if err != nil {
			return err
		}
		r, err := runPoint(sys, cfg, ycsb.WorkloadC, sc.Clients, sc.Ops, 4)
		if err != nil {
			return err
		}
		r.System = "CHIME/" + variant.label
		rows = append(rows, r)
	}
	fmt.Fprint(w, FormatResults(rows))
	return nil
}

// Fig4c reproduces Figure 4c: raw READ throughput against one MN as the
// neighborhood (block) size grows — 1-entry reads are IOPS-bound, large
// neighborhoods bandwidth-bound, so 8-entry reads cannot be 8x slower
// than 1-entry reads (§3.2.3).
func Fig4c(w io.Writer, sc Scale) error {
	const entryBytes = 19 // 8B key + 8B value + flags/bitmap
	fmt.Fprintf(w, "# Figure 4c: continuous READs of H-entry neighborhoods, 1 MN, %d clients\n", sc.Clients)
	fmt.Fprintf(w, "%-6s %10s %12s %12s\n", "H", "bytes", "Mops", "GB/s")
	for _, h := range []int{1, 2, 4, 8, 16} {
		block := h * entryBytes
		runtime.GC()
		debug.FreeOSMemory()
		f := DefaultFabric(1, sc.MNSize)
		opsPer := sc.Ops / sc.Clients * 4
		if opsPer < 500 {
			opsPer = 500
		}
		var wg sync.WaitGroup
		durs := make([]int64, sc.Clients)
		// Carve the readable region out of MN 0's allocator once, up
		// front: the timed loop then derives every address from this
		// base via GAddr.Add instead of raw GAddr literals, keeping all
		// address construction on the sanctioned verb-gate paths.
		span := sc.MNSize - block - 64
		setup := f.NewClient()
		region, err := setup.AllocRPC(0, span+block)
		if err != nil {
			return err
		}
		// The cohort shares one virtual epoch and the time gate, so the
		// NIC's IOPS/bandwidth ceilings bind exactly as configured.
		cls := make([]*dmsim.Client, sc.Clients)
		for ci := range cls {
			cls[ci] = f.NewClient()
			cls[ci].JoinCohort()
		}
		for ci := 0; ci < sc.Clients; ci++ {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				cl := cls[ci]
				defer cl.LeaveCohort()
				r := rand.New(rand.NewSource(int64(ci)))
				buf := make([]byte, block)
				start := cl.Now()
				for i := 0; i < opsPer; i++ {
					addr := region.Add(uint64(r.Intn(span)))
					if err := cl.Read(addr, buf); err != nil {
						return
					}
				}
				durs[ci] = cl.Now() - start
			}(ci)
		}
		wg.Wait()
		var maxDur int64 = 1
		for _, d := range durs {
			if d > maxDur {
				maxDur = d
			}
		}
		ops := float64(sc.Clients * opsPer)
		mops := ops * 1e3 / float64(maxDur)
		fmt.Fprintf(w, "%-6d %10d %12.3f %12.3f\n", h, block, mops, mops*float64(block)/1e3)
	}
	return nil
}
