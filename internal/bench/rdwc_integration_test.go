package bench

import (
	"testing"

	"chime/internal/ycsb"
)

// TestRDWCToggle verifies the combining layer is actually in the client
// path: under a skewed read workload with many clients, delegated reads
// reduce trips per op relative to the DisableRDWC configuration.
func TestRDWCToggle(t *testing.T) {
	sc := tinyScale
	sc.LoadN = 8000
	trips := map[bool]float64{}
	for _, disable := range []bool{false, true} {
		sys, cfg, err := buildSystem("CHIME", sc, 1, func(c *SystemConfig) {
			c.DisableRDWC = disable
		})
		if err != nil {
			t.Fatal(err)
		}
		r, err := runPoint(sys, cfg, ycsb.WorkloadC, 32, 6000, 7)
		if err != nil {
			t.Fatal(err)
		}
		trips[disable] = r.TripsPerOp
	}
	if trips[false] >= trips[true] {
		t.Fatalf("RDWC on: %.3f trips/op, off: %.3f — delegation not engaging",
			trips[false], trips[true])
	}
}

// TestRDWCCorrectUnderWrites runs a read/update mix with combining on
// and verifies the run completes without consistency errors (the Run
// harness surfaces any index error).
func TestRDWCCorrectUnderWrites(t *testing.T) {
	sc := tinyScale
	for _, name := range []string{"CHIME", "Sherman", "SMART", "ROLEX"} {
		sys, cfg, err := buildSystem(name, sc, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := runPoint(sys, cfg, ycsb.WorkloadA, 16, 2000, 8); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
