package bench

import (
	"fmt"
	"io"
	"math"

	"chime/internal/core"
	"chime/internal/ycsb"
)

// Experiments for the quantitative claims in the paper's §4.5
// "Discussions": update write amplification, remote memory overhead,
// and tree height across dataset sizes.

func init() {
	register(Experiment{ID: "disc-wamp", Title: "§4.5 write amplification of updates", Run: DiscWriteAmp})
	register(Experiment{ID: "disc-mem", Title: "§4.5 remote memory consumption breakdown", Run: DiscMemory})
	register(Experiment{ID: "disc-height", Title: "§4.5 tree height vs dataset size", Run: DiscHeight})
}

// DiscWriteAmp measures bytes written per update against the KV size.
// The paper's claim: with 256-byte KV items the version overhead is
// 1 + KV/63 + 1 ≈ 5.1 bytes, a 1.02x write amplification.
func DiscWriteAmp(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# §4.5: update write amplification vs KV size\n")
	fmt.Fprintf(w, "%-8s %10s %12s %14s %12s\n", "valB", "kvB", "wrB/op", "amplification", "paper-model")
	for _, vs := range []int{8, 56, 120, 248} { // kv = key(8) + value
		kv := 8 + vs
		subScale := sc
		subScale.LoadN = sc.LoadN / 4
		subScale.Ops = sc.Ops / 4
		sys, cfg, err := buildSystem("CHIME", subScale, 1, func(c *SystemConfig) {
			c.ValueSize = vs
			c.DisableRDWC = true // measure the raw protocol, not combining
		})
		if err != nil {
			return err
		}
		mix := ycsb.Mix{Name: "U", UpdatePct: 1.0, Dist: ycsb.DistUniform}
		r, err := runPoint(sys, cfg, mix, sc.Clients, subScale.Ops, 45)
		if err != nil {
			return err
		}
		// An update writes the full entry cell (KV + versions + bitmap,
		// line-padded for large items) plus the lock CAS and the
		// combined unlock word. The paper's 1.02x counts only the
		// version bytes over the data; the model column applies the
		// same accounting.
		model := 1.0 + float64(kv)/63.0 // version bytes (paper's accounting)
		fmt.Fprintf(w, "%-8d %10d %12.1f %14.3fx %11.3fx\n",
			vs, kv, r.WriteBytes, r.WriteBytes/float64(kv),
			(float64(kv)+model)/float64(kv))
	}
	fmt.Fprintf(w, "(measured includes the 16B of lock CAS + unlock and, for items above 63B,\n")
	fmt.Fprintf(w, " the cache-line padding of this implementation's big-cell layout; the paper's\n")
	fmt.Fprintf(w, " 1.02x claim counts version bytes only — the model column.)\n")
	return nil
}

// DiscMemory reports the remote-memory overhead breakdown of CHIME's
// leaf layout: hopscotch bitmaps, cache-line versions, metadata
// replicas, and the load-factor slack (§4.5 reports 8.3B metadata per
// 256B item ≈ 3%, and a ~1.1x load-factor overhead at H=8).
func DiscMemory(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# §4.5: remote memory consumption per stored item\n")
	fmt.Fprintf(w, "%-8s %10s %12s %12s %12s\n", "valB", "kvB", "leafB/slot", "metaB/slot", "meta%%")
	for _, vs := range []int{8, 248} {
		opts := core.DefaultOptions()
		opts.ValueSize = vs
		ix, err := core.Bootstrap(DefaultFabric(1, 64<<20), opts)
		if err != nil {
			return err
		}
		kv := 8 + vs
		perSlot := float64(ix.LeafNodeSize()-64) / 64.0 // lock line excluded, span 64
		meta := perSlot - float64(kv)
		fmt.Fprintf(w, "%-8d %10d %12.1f %12.1f %11.1f%%\n",
			vs, kv, perSlot, meta, 100*meta/float64(kv))
	}
	fmt.Fprintf(w, "\n(at the default 8B values the overhead is ~8B/slot, matching the paper's\n")
	fmt.Fprintf(w, " 8.3B estimate; large inline items additionally pay this implementation's\n")
	fmt.Fprintf(w, " cache-line padding for multi-line entry cells.)\n")
	fmt.Fprintf(w, "\nload-factor slack: a span-64/H-8 leaf sustains ~88%% occupancy before\n")
	fmt.Fprintf(w, "splitting (fig19a), so slot storage costs ~1.1x the resident data,\n")
	fmt.Fprintf(w, "matching the paper's estimate; H=16 reaches ~99.8%% (fig19b).\n")
	return nil
}

// DiscHeight reproduces the §4.5 tree-height claim: with a span of 64
// and a high leaf load factor, the height stays at or below 5 out to a
// billion keys. Measured at this run's scale, extrapolated analytically.
func DiscHeight(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# §4.5: tree height = ceil(log_span(n / loadFactor))\n")
	fmt.Fprintf(w, "%-14s %10s %10s\n", "items", "height@88%", "height@99.8%")
	for _, n := range []float64{1e5, 1e6, 1e7, 1e8, 1e9} {
		h1 := math.Ceil(math.Log(n/0.881/64) / math.Log(64)) // internal levels over span-64 leaves
		h2 := math.Ceil(math.Log(n/0.998/64) / math.Log(64))
		fmt.Fprintf(w, "%-14.0f %10.0f %10.0f\n", n, h1+1, h2+1)
	}

	// Measured: count remote traversal depth at this scale with a cold
	// cache — trips per search on an unwarmed client ≈ height + 1.
	subScale := sc
	subScale.LoadN = sc.LoadN / 2
	sys, cfg, err := buildSystem("CHIME", subScale, 1, func(c *SystemConfig) {
		c.CacheBytes = 0 // no cache: every level is a remote READ
		c.HotspotBytes = 0
		c.DisableRDWC = true
	})
	if err != nil {
		return err
	}
	cl := sys.NewClient()
	before := cl.DM().Stats().Trips
	const probes = 200
	for i := 0; i < probes; i++ {
		if _, err := cl.Search(cfg.LoadKeys[(i*37)%len(cfg.LoadKeys)]); err != nil {
			return err
		}
	}
	perOp := float64(cl.DM().Stats().Trips-before) / probes
	fmt.Fprintf(w, "\nmeasured: %.2f trips per uncached search at %d keys (= height+1, +1 super-block)\n",
		perOp, subScale.LoadN)
	return nil
}
