package bench

import (
	"runtime"
	"testing"

	"chime/internal/dmsim"
	"chime/internal/folio"
	"chime/internal/ycsb"
)

// persistPin runs one single-client write-bearing CHIME point on a
// fabric with the given scheduler and (optional) persistence dir, and
// returns its fingerprint. Single client: contended write order within
// a cohort window is host-scheduling-dependent, the one nondeterminism
// the simulator does not define away.
func persistPin(t *testing.T, sched dmsim.SchedulerKind, dir string) string {
	t.Helper()
	sc := tinyScale
	sc.LoadN = 2500
	var fab *dmsim.Fabric
	sys, cfg, err := buildSystem("CHIME", sc, 1, func(c *SystemConfig) {
		fcfg := dmsim.DefaultConfig()
		fcfg.MNs = 1
		fcfg.MNSize = sc.MNSize
		fcfg.ChunkBytes = 1 << 20
		fcfg.Scheduler = sched
		fcfg.Persist.Dir = dir
		fab = dmsim.MustNewFabric(fcfg)
		c.Fabric = fab
		c.LoadClients = 1
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := runPoint(sys, cfg, ycsb.WorkloadA, 1, 600, 7)
	if err != nil {
		t.Fatal(err)
	}
	if dir == "" {
		if fab.PersistEnabled() {
			t.Fatal("persistence plane attached without Persist.Dir")
		}
		if s := fab.PersistStats(); s != (dmsim.PersistStats{}) {
			t.Fatalf("persistence-off fabric logged: %+v", s)
		}
	} else if s := fab.PersistStats(); s.Records == 0 {
		t.Fatal("persistence-on fabric logged nothing under a write workload")
	}
	return persistFingerprint(r, fab)
}

// TestPersistOffMeansOff is the durability plane's determinism pin.
//
// Off: a fabric whose Persist config is the zero value must behave
// exactly as the pre-plane fabric did — no files, no counters, and
// same-seed bit-identical rows regardless of host parallelism, under
// both schedulers.
//
// On: enabling the plane may only add the deterministic virtual-time
// charge — same-seed runs stay bit-identical across GOMAXPROCS under
// both schedulers, with the persistence counters in the fingerprint.
func TestPersistOffMeansOff(t *testing.T) {
	scheds := []struct {
		name string
		kind dmsim.SchedulerKind
	}{
		{"gate", dmsim.SchedulerGate},
		{"eventloop", dmsim.SchedulerEventLoop},
	}
	for _, s := range scheds {
		t.Run(s.name, func(t *testing.T) {
			for _, persist := range []bool{false, true} {
				dirFor := func() string {
					if !persist {
						return ""
					}
					return t.TempDir()
				}
				prev := runtime.GOMAXPROCS(1)
				fp1 := persistPin(t, s.kind, dirFor())
				runtime.GOMAXPROCS(4)
				fp4 := persistPin(t, s.kind, dirFor())
				runtime.GOMAXPROCS(prev)
				if fp1 != fp4 {
					t.Errorf("persist=%t: fingerprints diverge across GOMAXPROCS: %s vs %s",
						persist, fp1, fp4)
				}
			}
		})
	}
}

// TestRunPersistSections smoke-runs the full experiment at a trimmed
// scale: every section present, every point double-run bit-identical,
// and warm-start restoring faster than cold load.
func TestRunPersistSections(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-system experiment sweep")
	}
	sc := tinyScale
	sc.LoadN = 2500
	sc.Ops = 800
	dir, err := folio.ScratchDir("chime-persist-test")
	if err != nil {
		t.Fatal(err)
	}
	defer folio.RemoveDir(dir)
	rows, err := RunPersist(sc, PersistOptions{SnapshotDir: dir, Systems: []string{"CHIME"}})
	if err != nil {
		t.Fatal(err)
	}
	sections := map[string]int{}
	for _, r := range rows {
		sections[r.Section]++
		if !r.Reproducible {
			t.Errorf("%s/%s persist=%t: double run was not bit-identical (fingerprint %s)",
				r.Section, r.System, r.Persist, r.Fingerprint)
		}
		switch r.Section {
		case "recovery":
			if r.RecoverNs <= 0 || r.LogRecords <= 0 {
				t.Errorf("degenerate recovery row: %+v", r)
			}
		case "warmstart":
			if r.Speedup <= 1 {
				t.Errorf("warm-start not faster than cold load: %+v", r)
			}
		}
	}
	if sections["overhead"] != 2*len(HeadToHeadSystems) || sections["recovery"] == 0 || sections["warmstart"] != 1 {
		t.Fatalf("missing sections: %v", sections)
	}

	// The -snapshot contract: the warm-start cache persists, so a second
	// sweep restores without reloading (and still fingerprints clean).
	if !folio.Exists(folio.Join(dir, "CHIME", "mn0.folio")) {
		t.Fatal("snapshot cache not left under the -snapshot dir")
	}
}
