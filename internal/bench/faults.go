package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"chime/internal/fault"
	"chime/internal/ycsb"
)

// Faults experiment: YCSB A and B across all four systems under an
// escalating verb-level fault schedule (dropped completions + latency
// spikes, injected by internal/fault through the dmsim fault gate),
// with lease-based lock recovery armed. The clean row (rate 0) runs
// with NO injector attached, so its numbers are directly comparable to
// every other experiment; TestFaultsZeroScheduleBitIdentical pins that
// a zero-rate schedule reproduces it bit for bit.

// FaultRates is the default escalation: fraction of verbs that lose
// their completion (retried after a timeout) and, independently, that
// suffer a latency spike.
var FaultRates = []float64{0, 0.001, 0.005, 0.02}

// faultSpikeNs is the injected spike size: 10x the fabric RTT.
const faultSpikeNs = 20_000

// faultLeaseNs is the lease length for the sweep — long enough that
// accumulated fault penalties on a live holder can never look like a
// crash (see internal/fault's chaos harness for the sizing argument).
const faultLeaseNs = 10_000_000

// DefaultFaultSeed seeds the sweep's schedules when the caller passes
// 0; each rate step salts it so escalation steps are independent draws.
const DefaultFaultSeed = 1000

// FaultRow is one point of the fault sweep, JSON-serializable for the
// committed BENCH_FAULTS.json artifact.
type FaultRow struct {
	System            string  `json:"system"`
	Mix               string  `json:"mix"`
	Rate              float64 `json:"rate"`
	Clients           int     `json:"clients"`
	Ops               int64   `json:"ops"`
	ThroughputMops    float64 `json:"throughput_mops"`
	SlowdownVsClean   float64 `json:"slowdown_vs_clean"`
	P50Us             float64 `json:"p50_us"`
	P99Us             float64 `json:"p99_us"`
	VerbTimeoutsPerOp float64 `json:"verb_timeouts_per_op"`
	VerbRetriesPerOp  float64 `json:"verb_retries_per_op"`
	LeaseExpired      int64   `json:"lease_expired"`
	Recoveries        int64   `json:"recoveries"`
}

// RunFaults sweeps the fault rate for every system on YCSB A and B.
// Each (system, mix) pair is built once and the escalation reuses the
// instance — caches are warm past the first rate, which is the regime
// the sweep probes (fault tolerance of a running system, not cold
// start). Rates beyond the first attach a fresh seeded Schedule; the
// injector is detached before the next pair so the clean rows stay
// uncontaminated.
func RunFaults(sc Scale, seed int64, rates []float64) ([]FaultRow, error) {
	if seed == 0 {
		seed = DefaultFaultSeed
	}
	if len(rates) == 0 {
		rates = FaultRates
	}
	obs := sc.Obs
	if obs == nil {
		// The fault columns fold through the observer registry; thread a
		// private one when the caller didn't ask for metrics capture.
		obs = NewObserver(false)
		sc.Obs = obs
	}
	var rows []FaultRow
	for _, name := range HeadToHeadSystems {
		for _, mix := range []ycsb.Mix{ycsb.WorkloadA, ycsb.WorkloadB} {
			sys, cfg, err := buildSystem(name, sc, 1, func(c *SystemConfig) {
				c.LeaseLocks = true
				c.LeaseNs = faultLeaseNs
			})
			if err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			var clean float64
			for ri, rate := range rates {
				if rate > 0 {
					cfg.Fabric.SetFaultInjector(fault.NewSchedule(fault.Config{
						Seed:      seed + int64(ri),
						DropRate:  rate,
						SpikeRate: rate,
						SpikeNs:   faultSpikeNs,
					}))
				}
				r, err := runPoint(sys, cfg, mix, sc.Clients, sc.Ops, 17)
				cfg.Fabric.SetFaultInjector(nil)
				if err != nil {
					return nil, fmt.Errorf("%s %s rate=%g: %w", name, mix.Name, rate, err)
				}
				if clean == 0 {
					clean = r.ThroughputMops
				}
				rows = append(rows, FaultRow{
					System:            name,
					Mix:               mix.Name,
					Rate:              rate,
					Clients:           r.Clients,
					Ops:               r.Ops,
					ThroughputMops:    r.ThroughputMops,
					SlowdownVsClean:   clean / r.ThroughputMops,
					P50Us:             r.P50Us,
					P99Us:             r.P99Us,
					VerbTimeoutsPerOp: r.VerbTimeoutsPerOp,
					VerbRetriesPerOp:  r.VerbRetriesPerOp,
					LeaseExpired:      r.LeaseExpired,
					Recoveries:        r.Recoveries,
				})
			}
		}
	}
	return rows, nil
}

// FormatFaultsRows renders the sweep as an aligned table.
func FormatFaultsRows(rows []FaultRow) string {
	out := fmt.Sprintf("%-10s %-4s %7s %8s %10s %9s %9s %9s %10s %10s %8s %6s\n",
		"system", "mix", "rate", "clients", "Mops", "slowdown", "p50(us)", "p99(us)",
		"tmo/op", "retry/op", "expired", "recov")
	for _, r := range rows {
		out += fmt.Sprintf("%-10s %-4s %7.3f %8d %10.3f %9.2f %9.1f %9.1f %10.4f %10.4f %8d %6d\n",
			r.System, r.Mix, r.Rate, r.Clients, r.ThroughputMops, r.SlowdownVsClean,
			r.P50Us, r.P99Us, r.VerbTimeoutsPerOp, r.VerbRetriesPerOp,
			r.LeaseExpired, r.Recoveries)
	}
	return out
}

// MarshalFaultsJSON renders the rows as the BENCH_FAULTS.json artifact
// format.
func MarshalFaultsJSON(sc Scale, rows []FaultRow) ([]byte, error) {
	return json.MarshalIndent(struct {
		Experiment string     `json:"experiment"`
		LoadN      int        `json:"load_n"`
		Ops        int        `json:"ops"`
		SpikeNs    int        `json:"spike_ns"`
		LeaseNs    int        `json:"lease_ns"`
		Rows       []FaultRow `json:"rows"`
	}{
		Experiment: "faults",
		LoadN:      sc.LoadN,
		Ops:        sc.Ops,
		SpikeNs:    faultSpikeNs,
		LeaseNs:    faultLeaseNs,
		Rows:       rows,
	}, "", "  ")
}

func init() {
	register(Experiment{ID: "faults", Title: "Fault-rate sweep: transient verb faults with lease recovery armed", Run: Faults})
}

// Faults is the registered experiment wrapper around RunFaults.
func Faults(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# Fault sweep: dropped completions + latency spikes per verb, lease locks on\n")
	rows, err := RunFaults(sc, 0, nil)
	if err != nil {
		return err
	}
	fmt.Fprint(w, FormatFaultsRows(rows))
	return nil
}
