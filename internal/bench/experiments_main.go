package bench

import (
	"fmt"
	"io"

	"chime/internal/ycsb"
)

// Main evaluation experiments (§5.2): the YCSB comparison, the
// variable-length variant, cache consumption and Table 1 round trips.

func init() {
	register(Experiment{ID: "main", Title: "Head-to-head with observability columns (retries, cache, NIC)", Run: MainObs})
	register(Experiment{ID: "fig12", Title: "YCSB throughput-latency comparison", Run: Fig12})
	register(Experiment{ID: "fig13", Title: "Variable-length KV comparison", Run: Fig13})
	register(Experiment{ID: "fig14", Title: "Cache consumption vs dataset size", Run: Fig14})
	register(Experiment{ID: "tab1", Title: "Round trips per operation", Run: Table1})
}

// MainObs runs the four systems head to head on YCSB A and C and prints
// the observability columns Run folds into each row: protocol-event
// rates (retries, torn reads, lock backoffs, sibling/overflow chases),
// cache and hotspot hit ratios, NIC utilization, and the
// read-delegation/write-combining totals. It reuses the Scale's
// observer when chime-bench attached one (-metrics-json / -trace) and
// creates its own otherwise, so the event columns are always populated.
func MainObs(w io.Writer, sc Scale) error {
	if sc.Obs == nil {
		sc.Obs = NewObserver(false)
	}
	for _, mix := range []ycsb.Mix{ycsb.WorkloadA, ycsb.WorkloadC} {
		fmt.Fprintf(w, "# main: YCSB %s observability summary\n", mix.Name)
		var rows []Result
		for _, name := range HeadToHeadSystems {
			if !workloadSupported(name, mix) {
				continue
			}
			sys, cfg, err := buildSystem(name, sc, 1, nil)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", name, mix.Name, err)
			}
			r, err := runPoint(sys, cfg, mix, sc.Clients, sc.Ops, 20)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", name, mix.Name, err)
			}
			rows = append(rows, r)
		}
		fmt.Fprint(w, FormatObsResults(rows))
	}
	return nil
}

// workloadSupported reports whether a system runs a workload (ROLEX is
// excluded from YCSB LOAD because its models are pre-trained, exactly
// as in the paper).
func workloadSupported(system string, mix ycsb.Mix) bool {
	return !(system == "ROLEX" && mix.Name == "LOAD")
}

// Fig12 reproduces Figure 12: throughput-latency across YCSB A, B, C,
// D, E and LOAD for all four indexes, sweeping client counts.
func Fig12(w io.Writer, sc Scale) error {
	mixes := []ycsb.Mix{
		ycsb.WorkloadA, ycsb.WorkloadB, ycsb.WorkloadC,
		ycsb.WorkloadD, ycsb.WorkloadE, ycsb.WorkloadLoad,
	}
	for _, mix := range mixes {
		fmt.Fprintf(w, "# Figure 12: YCSB %s\n", mix.Name)
		var rows []Result
		for _, name := range HeadToHeadSystems {
			if !workloadSupported(name, mix) {
				continue
			}
			sys, cfg, err := buildSystem(name, sc, 1, nil)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", name, mix.Name, err)
			}
			for _, clients := range sc.ClientSweep {
				r, err := runPoint(sys, cfg, mix, clients, sc.Ops, 12)
				if err != nil {
					return fmt.Errorf("%s/%s: %w", name, mix.Name, err)
				}
				rows = append(rows, r)
			}
		}
		fmt.Fprint(w, FormatResults(rows))
	}
	return nil
}

// Fig13 reproduces Figure 13: the variable-length-KV variants
// (CHIME-Indirect, Marlin≈Sherman-Indirect, ROLEX-Indirect, SMART-RCU)
// at a fixed client count. SMART keeps KVs in its leaf blocks (RCU
// style), so it runs unchanged with the larger value.
func Fig13(w io.Writer, sc Scale) error {
	const valueSize = 64
	mixes := []ycsb.Mix{ycsb.WorkloadA, ycsb.WorkloadC, ycsb.WorkloadE}
	for _, mix := range mixes {
		fmt.Fprintf(w, "# Figure 13: YCSB %s, %dB values, indirect allocation\n", mix.Name, valueSize)
		var rows []Result
		for _, name := range HeadToHeadSystems {
			if !workloadSupported(name, mix) {
				continue
			}
			sys, cfg, err := buildSystem(name, sc, 1, func(c *SystemConfig) {
				c.ValueSize = valueSize
				c.Indirect = name != "SMART" // SMART-RCU keeps KV in the leaf
			})
			if err != nil {
				return fmt.Errorf("%s/%s: %w", name, mix.Name, err)
			}
			r, err := runPoint(sys, cfg, mix, sc.Clients, sc.Ops, 13)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", name, mix.Name, err)
			}
			switch name {
			case "CHIME":
				r.System = "CHIME-Indirect"
			case "Sherman":
				r.System = "Marlin(Sherman-Ind)"
			case "ROLEX":
				r.System = "ROLEX-Indirect"
			case "SMART":
				r.System = "SMART-RCU"
			}
			rows = append(rows, r)
		}
		fmt.Fprint(w, FormatResults(rows))
	}
	return nil
}

// Fig14 reproduces Figure 14: computing-side cache consumption as the
// dataset grows, measured with ample cache budgets after a full read
// pass, plus the linear extrapolation to the paper's 60M keys.
func Fig14(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# Figure 14: cache consumption vs loaded items (ample cache)\n")
	fmt.Fprintf(w, "%-10s %10s %14s %14s %16s\n", "system", "items", "cacheMB", "B/key", "60M-extrap(MB)")
	sizes := []int{sc.LoadN / 2, sc.LoadN, sc.LoadN * 2}
	for _, name := range HeadToHeadSystems {
		for _, n := range sizes {
			subScale := sc
			subScale.LoadN = n
			sys, cfg, err := buildSystem(name, subScale, 1, func(c *SystemConfig) {
				c.CacheBytes = 4 << 30 // ample: hold everything
				c.HotspotBytes = 0     // count the index cache alone, as the paper does
			})
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			// One full read pass populates the cache with every internal
			// node a client can touch.
			cl := sys.NewClient()
			for _, k := range cfg.LoadKeys {
				if _, err := cl.Search(k); err != nil {
					return fmt.Errorf("%s read pass: %w", name, err)
				}
			}
			bytes := sys.CacheBytes()
			perKey := float64(bytes) / float64(n)
			fmt.Fprintf(w, "%-10s %10d %14.2f %14.2f %16.1f\n",
				name, n, float64(bytes)/1e6, perKey, perKey*60e6/1e6)
		}
	}
	fmt.Fprintf(w, "(CHIME additionally uses a hotspot buffer, 30 MB at paper scale)\n")
	return nil
}

// Table1 reproduces Table 1: measured round trips per operation in the
// best case (all internal nodes cached) and worst case (no cache).
func Table1(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# Table 1: round trips per operation (measured, CHIME)\n")
	fmt.Fprintf(w, "%-10s %12s %12s\n", "op", "best", "worst")

	measure := func(cacheBytes int64) (search, insert, update, scan float64, err error) {
		sys, cfg, err := buildSystem("CHIME", sc, 1, func(c *SystemConfig) {
			c.CacheBytes = cacheBytes
			c.HotspotBytes = 0 // speculation changes trip counts; measure the base protocol
		})
		if err != nil {
			return 0, 0, 0, 0, err
		}
		cl := sys.NewClient()
		if cacheBytes > 0 {
			// Warm the cache with a full pass.
			for _, k := range cfg.LoadKeys {
				if _, err := cl.Search(k); err != nil {
					return 0, 0, 0, 0, err
				}
			}
		}
		trips := func(f func(i int) error, n int) (float64, error) {
			before := cl.DM().Stats().Trips
			for i := 0; i < n; i++ {
				if err := f(i); err != nil {
					return 0, err
				}
			}
			return float64(cl.DM().Stats().Trips-before) / float64(n), nil
		}
		const probes = 200
		keys := cfg.LoadKeys
		val := make([]byte, cfg.ValueSize)
		if search, err = trips(func(i int) error {
			_, err := cl.Search(keys[(i*37)%len(keys)])
			return err
		}, probes); err != nil {
			return
		}
		if update, err = trips(func(i int) error {
			return cl.Update(keys[(i*53)%len(keys)], val)
		}, probes); err != nil {
			return
		}
		if insert, err = trips(func(i int) error {
			return cl.Insert(ycsb.KeyOf(uint64(len(keys)+i+int(cacheBytes%97)*1000)), val)
		}, probes); err != nil {
			return
		}
		if scan, err = trips(func(i int) error {
			_, err := cl.Scan(keys[(i*41)%len(keys)], 20)
			return err
		}, probes); err != nil {
			return
		}
		return search, insert, update, scan, nil
	}

	bs, bi, bu, bsc, err := measure(4 << 30)
	if err != nil {
		return err
	}
	ws, wi, wu, wsc, err := measure(0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %12.2f %12.2f   (paper: 1-2 / h+1-h+2)\n", "search", bs, ws)
	fmt.Fprintf(w, "%-10s %12.2f %12.2f   (paper: 3 / h+3; +1 with block alloc)\n", "insert", bi, wi)
	fmt.Fprintf(w, "%-10s %12.2f %12.2f   (paper: 3-4 / h+3-h+4)\n", "update", bu, wu)
	fmt.Fprintf(w, "%-10s %12.2f %12.2f   (paper: 1+leaves / h+1+leaves)\n", "scan", bsc, wsc)
	return nil
}
