package bench

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"chime/internal/core"
	"chime/internal/dmsim"
	"chime/internal/rdwc"
	"chime/internal/rolex"
	"chime/internal/sherman"
	"chime/internal/smartidx"
	"chime/internal/ycsb"
)

// rdwcClient wraps an index client with the per-CN read-delegation /
// write-combining layer the paper's evaluation applies to every system
// (§5.1). Search and Update on the same key coalesce; structural
// operations pass through.
type rdwcClient struct {
	Client
	comb *rdwc.Combiner
}

func (r rdwcClient) Search(key uint64) ([]byte, error) {
	return r.comb.Read(r.DM(), key, func() ([]byte, error) {
		return r.Client.Search(key)
	})
}

func (r rdwcClient) Update(key uint64, value []byte) error {
	return r.comb.Write(r.DM(), key, value, func(v []byte) error {
		return r.Client.Update(key, v)
	})
}

// WriteCombineStats forwards to the wrapped client (the embedded Client
// interface would otherwise hide the optional method from the harness).
func (r rdwcClient) WriteCombineStats() (cycles, combinedKeys int64) {
	if wr, ok := r.Client.(WriteCombineReporter); ok {
		return wr.WriteCombineStats()
	}
	return 0, 0
}

// withRDWC wraps a client factory when the config enables combining.
func withRDWC(cfg SystemConfig, comb *rdwc.Combiner, inner func() Client) func() Client {
	if cfg.DisableRDWC {
		return inner
	}
	return func() Client { return rdwcClient{Client: inner(), comb: comb} }
}

// Adapters wrapping each index behind the System/Client interfaces.
// Every adapter normalizes its index's not-found sentinel to
// bench.ErrNotFound and bulk-loads with parallel clients.

func loadClients(cfg SystemConfig) int {
	if cfg.LoadClients > 0 {
		return cfg.LoadClients
	}
	return 8
}

// parallelLoad inserts the load keys through newClient handles.
func parallelLoad(cfg SystemConfig, newClient func() Client) error {
	n := len(cfg.LoadKeys)
	if n == 0 {
		return nil
	}
	workers := loadClients(cfg)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	chunk := (n + workers - 1) / workers
	// Create loader clients up front so the cohort shares one virtual
	// epoch (see bench.Run).
	loaders := make([]Client, workers)
	for w := range loaders {
		loaders[w] = newClient()
		loaders[w].DM().JoinCohort()
	}
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(cl Client, keys []uint64) {
			defer wg.Done()
			defer cl.DM().LeaveCohort()
			value := make([]byte, cfg.ValueSize)
			for _, k := range keys {
				if err := cl.Insert(k, value); err != nil {
					errs <- err
					return
				}
			}
		}(loaders[w], cfg.LoadKeys[lo:hi])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	return nil
}

// ---- CHIME ----

type chimeSystem struct {
	comb *rdwc.Combiner
	newC func() Client
	ix   *core.Index
	cn   *core.ComputeNode
}

type chimeClient struct{ cl *core.Client }

func (c chimeClient) Search(key uint64) ([]byte, error) {
	v, err := c.cl.Search(key)
	if errors.Is(err, core.ErrNotFound) {
		return nil, ErrNotFound
	}
	return v, err
}
func (c chimeClient) Insert(key uint64, value []byte) error { return c.cl.Insert(key, value) }
func (c chimeClient) Update(key uint64, value []byte) error {
	err := c.cl.Update(key, value)
	if errors.Is(err, core.ErrNotFound) {
		return ErrNotFound
	}
	return err
}
func (c chimeClient) Delete(key uint64) error {
	err := c.cl.Delete(key)
	if errors.Is(err, core.ErrNotFound) {
		return ErrNotFound
	}
	return err
}
func (c chimeClient) Scan(start uint64, count int) (int, error) {
	kvs, err := c.cl.Scan(start, count)
	return len(kvs), err
}
func (c chimeClient) SearchBatch(keys []uint64, depth int) ([][]byte, []error) {
	vals, errs := c.cl.SearchBatch(keys, depth)
	for i, err := range errs {
		if errors.Is(err, core.ErrNotFound) {
			errs[i] = ErrNotFound
		}
	}
	return vals, errs
}
func (c chimeClient) MultiPut(keys []uint64, values [][]byte, depth int) []error {
	return c.cl.MultiPut(keys, values, depth)
}
func (c chimeClient) UpdateBatch(keys []uint64, values [][]byte, depth int) []error {
	errs := c.cl.UpdateBatch(keys, values, depth)
	for i, err := range errs {
		if errors.Is(err, core.ErrNotFound) {
			errs[i] = ErrNotFound
		}
	}
	return errs
}
func (c chimeClient) WriteCombineStats() (cycles, combinedKeys int64) {
	return c.cl.WriteCombineStats()
}
func (c chimeClient) DM() *dmsim.Client { return c.cl.DM() }

func (s *chimeSystem) Name() string             { return "CHIME" }
func (s *chimeSystem) NewClient() Client        { return s.newC() }
func (s *chimeSystem) Combiner() *rdwc.Combiner { return s.comb }
func (s *chimeSystem) CacheHitMiss() (hits, misses int64) {
	cs := s.cn.CacheStats()
	return cs.Hits, cs.Misses
}
func (s *chimeSystem) HotspotHitMiss() (hits, lookups int64) {
	hs := s.cn.HotspotStats()
	return hs.Hits, hs.Lookups
}
func (s *chimeSystem) CacheBytes() int64 {
	cs := s.cn.CacheStats()
	hs := s.cn.HotspotStats()
	return cs.UsedBytes + int64(hs.Entries)*16
}

// chimeOptions derives the CHIME tree options one SystemConfig implies;
// shared by cold bootstrap and warm-start attach (which must agree, as
// layouts are derived from the options).
func chimeOptions(cfg SystemConfig) core.Options {
	opts := core.DefaultOptions()
	if cfg.SpanSize > 0 {
		opts.SpanSize = cfg.SpanSize
	}
	if cfg.Neighborhood > 0 {
		opts.Neighborhood = cfg.Neighborhood
	}
	opts.ValueSize = cfg.ValueSize
	opts.Indirect = cfg.Indirect
	opts.PiggybackVacancy = !cfg.DisablePiggyback
	opts.ReplicateMeta = !cfg.DisableReplication
	opts.SpeculativeRead = !cfg.DisableSpeculation
	opts.LeaseLocks = cfg.LeaseLocks
	opts.LeaseNs = cfg.LeaseNs
	opts.Offload = cfg.Offload
	return opts
}

// NewCHIME builds and loads a CHIME tree per the config.
func NewCHIME(cfg SystemConfig) (System, error) {
	ix, err := core.Bootstrap(cfg.Fabric, chimeOptions(cfg))
	if err != nil {
		return nil, err
	}
	sys := &chimeSystem{ix: ix, cn: ix.NewComputeNode(cfg.CacheBytes, cfg.HotspotBytes), comb: rdwc.NewCombiner()}
	sys.cn.SetObserver(cfg.Obs.Sink())
	sys.newC = withRDWC(cfg, sys.comb, func() Client { return chimeClient{cl: sys.cn.NewClient()} })
	if err := parallelLoad(cfg, sys.NewClient); err != nil {
		return nil, fmt.Errorf("chime load: %w", err)
	}
	return sys, nil
}

// ---- Sherman ----

type shermanSystem struct {
	comb *rdwc.Combiner
	newC func() Client
	ix   *sherman.Index
	cn   *sherman.ComputeNode
}

type shermanClient struct{ cl *sherman.Client }

func (c shermanClient) Search(key uint64) ([]byte, error) {
	v, err := c.cl.Search(key)
	if errors.Is(err, sherman.ErrNotFound) {
		return nil, ErrNotFound
	}
	return v, err
}
func (c shermanClient) Insert(key uint64, value []byte) error { return c.cl.Insert(key, value) }
func (c shermanClient) Update(key uint64, value []byte) error {
	err := c.cl.Update(key, value)
	if errors.Is(err, sherman.ErrNotFound) {
		return ErrNotFound
	}
	return err
}
func (c shermanClient) Delete(key uint64) error {
	err := c.cl.Delete(key)
	if errors.Is(err, sherman.ErrNotFound) {
		return ErrNotFound
	}
	return err
}
func (c shermanClient) Scan(start uint64, count int) (int, error) {
	kvs, err := c.cl.Scan(start, count)
	return len(kvs), err
}
func (c shermanClient) SearchBatch(keys []uint64, depth int) ([][]byte, []error) {
	vals, errs := c.cl.SearchBatch(keys, depth)
	for i, err := range errs {
		if errors.Is(err, sherman.ErrNotFound) {
			errs[i] = ErrNotFound
		}
	}
	return vals, errs
}
func (c shermanClient) MultiPut(keys []uint64, values [][]byte, depth int) []error {
	return c.cl.MultiPut(keys, values, depth)
}
func (c shermanClient) UpdateBatch(keys []uint64, values [][]byte, depth int) []error {
	errs := c.cl.UpdateBatch(keys, values, depth)
	for i, err := range errs {
		if errors.Is(err, sherman.ErrNotFound) {
			errs[i] = ErrNotFound
		}
	}
	return errs
}
func (c shermanClient) WriteCombineStats() (cycles, combinedKeys int64) {
	return c.cl.WriteCombineStats()
}
func (c shermanClient) DM() *dmsim.Client { return c.cl.DM() }

func (s *shermanSystem) Name() string             { return "Sherman" }
func (s *shermanSystem) NewClient() Client        { return s.newC() }
func (s *shermanSystem) Combiner() *rdwc.Combiner { return s.comb }
func (s *shermanSystem) CacheHitMiss() (hits, misses int64) {
	h, m, _, _ := s.cn.CacheStats()
	return h, m
}
func (s *shermanSystem) CacheBytes() int64 {
	_, _, _, used := s.cn.CacheStats()
	return used
}

// shermanOptions derives the Sherman tree options one SystemConfig
// implies; shared by cold bootstrap and warm-start attach.
func shermanOptions(cfg SystemConfig) sherman.Options {
	opts := sherman.DefaultOptions()
	if cfg.SpanSize > 0 {
		opts.SpanSize = cfg.SpanSize
	}
	opts.ValueSize = cfg.ValueSize
	opts.Indirect = cfg.Indirect
	opts.LeaseLocks = cfg.LeaseLocks
	opts.LeaseNs = cfg.LeaseNs
	opts.Offload = cfg.Offload
	return opts
}

// NewSherman builds and loads a Sherman tree.
func NewSherman(cfg SystemConfig) (System, error) {
	ix, err := sherman.Bootstrap(cfg.Fabric, shermanOptions(cfg))
	if err != nil {
		return nil, err
	}
	sys := &shermanSystem{ix: ix, cn: ix.NewComputeNode(cfg.CacheBytes), comb: rdwc.NewCombiner()}
	sys.cn.SetObserver(cfg.Obs.Sink())
	sys.newC = withRDWC(cfg, sys.comb, func() Client { return shermanClient{cl: sys.cn.NewClient()} })
	if err := parallelLoad(cfg, sys.NewClient); err != nil {
		return nil, fmt.Errorf("sherman load: %w", err)
	}
	return sys, nil
}

// ---- SMART ----

type smartSystem struct {
	comb *rdwc.Combiner
	newC func() Client
	ix   *smartidx.Index
	cn   *smartidx.ComputeNode
}

type smartClient struct{ cl *smartidx.Client }

func (c smartClient) Search(key uint64) ([]byte, error) {
	v, err := c.cl.Search(key)
	if errors.Is(err, smartidx.ErrNotFound) {
		return nil, ErrNotFound
	}
	return v, err
}
func (c smartClient) Insert(key uint64, value []byte) error { return c.cl.Insert(key, value) }
func (c smartClient) Update(key uint64, value []byte) error {
	err := c.cl.Update(key, value)
	if errors.Is(err, smartidx.ErrNotFound) {
		return ErrNotFound
	}
	return err
}
func (c smartClient) Delete(key uint64) error {
	err := c.cl.Delete(key)
	if errors.Is(err, smartidx.ErrNotFound) {
		return ErrNotFound
	}
	return err
}
func (c smartClient) Scan(start uint64, count int) (int, error) {
	kvs, err := c.cl.Scan(start, count)
	return len(kvs), err
}
func (c smartClient) DM() *dmsim.Client { return c.cl.DM() }

func (s *smartSystem) Name() string             { return "SMART" }
func (s *smartSystem) NewClient() Client        { return s.newC() }
func (s *smartSystem) Combiner() *rdwc.Combiner { return s.comb }
func (s *smartSystem) CacheHitMiss() (hits, misses int64) {
	h, m, _, _ := s.cn.CacheStats()
	return h, m
}
func (s *smartSystem) CacheBytes() int64 {
	_, _, _, used := s.cn.CacheStats()
	return used
}

// NewSMART builds and loads a SMART tree. SMART ignores span/indirect
// options: leaves are discrete KV blocks already.
func NewSMART(cfg SystemConfig) (System, error) {
	opts := smartidx.DefaultOptions()
	opts.ValueSize = cfg.ValueSize
	opts.LeaseLocks = cfg.LeaseLocks
	opts.LeaseNs = cfg.LeaseNs
	opts.Offload = cfg.Offload
	ix, err := smartidx.Bootstrap(cfg.Fabric, opts)
	if err != nil {
		return nil, err
	}
	sys := &smartSystem{ix: ix, cn: ix.NewComputeNode(cfg.CacheBytes), comb: rdwc.NewCombiner()}
	sys.cn.SetObserver(cfg.Obs.Sink())
	sys.newC = withRDWC(cfg, sys.comb, func() Client { return smartClient{cl: sys.cn.NewClient()} })
	if err := parallelLoad(cfg, sys.NewClient); err != nil {
		return nil, fmt.Errorf("smart load: %w", err)
	}
	return sys, nil
}

// ---- ROLEX ----

type rolexSystem struct {
	comb *rdwc.Combiner
	newC func() Client
	ix   *rolex.Index
	cn   *rolex.ComputeNode
}

type rolexClient struct{ cl *rolex.Client }

func (c rolexClient) Search(key uint64) ([]byte, error) {
	v, err := c.cl.Search(key)
	if errors.Is(err, rolex.ErrNotFound) {
		return nil, ErrNotFound
	}
	return v, err
}
func (c rolexClient) Insert(key uint64, value []byte) error { return c.cl.Insert(key, value) }
func (c rolexClient) Update(key uint64, value []byte) error {
	err := c.cl.Update(key, value)
	if errors.Is(err, rolex.ErrNotFound) {
		return ErrNotFound
	}
	return err
}
func (c rolexClient) Delete(key uint64) error {
	err := c.cl.Delete(key)
	if errors.Is(err, rolex.ErrNotFound) {
		return ErrNotFound
	}
	return err
}
func (c rolexClient) Scan(start uint64, count int) (int, error) {
	kvs, err := c.cl.Scan(start, count)
	return len(kvs), err
}
func (c rolexClient) DM() *dmsim.Client { return c.cl.DM() }

func (s *rolexSystem) Name() string             { return "ROLEX" }
func (s *rolexSystem) NewClient() Client        { return s.newC() }
func (s *rolexSystem) Combiner() *rdwc.Combiner { return s.comb }
func (s *rolexSystem) CacheBytes() int64        { return s.ix.CacheBytes() }

// NewROLEX builds a ROLEX index, pre-training models over the load keys
// (the CHIME paper's setup; ROLEX is excluded from YCSB LOAD for the
// same reason the paper excludes it).
func NewROLEX(cfg SystemConfig) (System, error) {
	opts := rolex.DefaultOptions()
	if cfg.SpanSize > 0 {
		opts.SpanSize = cfg.SpanSize
		opts.Epsilon = cfg.SpanSize
	}
	opts.ValueSize = cfg.ValueSize
	opts.Indirect = cfg.Indirect
	opts.LeaseLocks = cfg.LeaseLocks
	opts.LeaseNs = cfg.LeaseNs
	opts.Offload = cfg.Offload
	if len(cfg.LoadKeys) == 0 {
		return nil, fmt.Errorf("rolex: needs load keys for pre-training")
	}
	ix, err := rolex.Build(cfg.Fabric, opts, cfg.LoadKeys, nil)
	if err != nil {
		return nil, err
	}
	sys := &rolexSystem{ix: ix, cn: ix.NewComputeNode(), comb: rdwc.NewCombiner()}
	sys.cn.SetObserver(cfg.Obs.Sink())
	sys.newC = withRDWC(cfg, sys.comb, func() Client { return rolexClient{cl: sys.cn.NewClient()} })
	return sys, nil
}

// Factories lists the head-to-head systems in the paper's order.
var Factories = map[string]Factory{
	"CHIME":   NewCHIME,
	"Sherman": NewSherman,
	"SMART":   NewSMART,
	"ROLEX":   NewROLEX,
}

// DefaultFabric builds the standard 1-MN testbed fabric with enough
// remote memory for the configured load. Allocation chunks are shrunk
// to 1 MB so client-count sweeps into the hundreds fit a laptop-sized
// MN (chunk size only changes allocation-RPC frequency; see
// dmsim.Config.ChunkBytes).
func DefaultFabric(mns int, mnSize int) *dmsim.Fabric {
	return OffloadFabric(mns, mnSize, 0, 0)
}

// OffloadFabric is DefaultFabric with the MN compute model's knobs
// exposed: cores per MN and the fixed dispatch cost per offloaded
// program. Zeros keep the model defaults (the fabric resolves them), so
// OffloadFabric(mns, size, 0, 0) builds the standard testbed.
func OffloadFabric(mns, mnSize, mnCPUs int, mnServiceNs int64) *dmsim.Fabric {
	cfg := dmsim.DefaultConfig()
	cfg.MNs = mns
	cfg.MNSize = mnSize
	cfg.ChunkBytes = 1 << 20
	cfg.MNCPUs = mnCPUs
	cfg.MNServiceTime = time.Duration(mnServiceNs)
	return dmsim.MustNewFabric(cfg)
}

// NewKeySpaceFor returns the shared keyspace seeded with the load size.
func NewKeySpaceFor(loadKeys []uint64) *ycsb.KeySpace {
	return ycsb.NewKeySpace(uint64(len(loadKeys)))
}
