package bench

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"

	"chime/internal/core"
	"chime/internal/dmsim"
	"chime/internal/folio"
	"chime/internal/rdwc"
	"chime/internal/sherman"
	"chime/internal/ycsb"
)

// Persist experiment: the durability plane's three headline numbers.
//
//	overhead  — the same single-client write-bearing workload with the
//	            folio backend off and on: the write-behind log's
//	            virtual-time charge per acked update, as a throughput
//	            delta.
//	recovery  — MN kill + restart at increasing log lengths: recovery's
//	            virtual cost (snapshot materialization + log replay)
//	            grows with the unsnapshotted tail, which is the argument
//	            for periodic compaction.
//	warmstart — host wall-clock of restoring a loaded tree from its
//	            folio snapshot (fabric restore + Attach, no remote
//	            writes) vs bootstrapping and bulk-loading it cold. The
//	            acceptance bar is restore ≥5× faster than cold load.
//
// Every section double-runs its points; fingerprints over the Result
// row plus the fabric's NIC/MN-CPU/persistence totals must come back
// bit-identical (single-client measured phases, so the host cannot
// reorder anything observable).

// PersistOptions parameterizes RunPersist (the chime-bench -snapshot
// flag lands in SnapshotDir).
type PersistOptions struct {
	// SnapshotDir, when set, is the warm-start cache: the loaded tree's
	// folio snapshot is written under <dir>/<system> on first use and
	// restored — instead of re-running the loader — thereafter, across
	// invocations. Empty means a scratch dir, removed afterwards.
	SnapshotDir string

	// Systems restricts the warm-start section (default CHIME, Sherman:
	// the two tree indexes with a warm Attach path).
	Systems []string
}

// PersistRow is one measured point, JSON-serializable for the committed
// BENCH_PERSIST.json artifact. Sections fill disjoint column subsets.
type PersistRow struct {
	Section string `json:"section"`
	System  string `json:"system"`
	Persist bool   `json:"persist"`

	Clients        int     `json:"clients,omitempty"`
	Ops            int64   `json:"ops,omitempty"`
	ThroughputMops float64 `json:"throughput_mops,omitempty"`
	P50Us          float64 `json:"p50_us,omitempty"`
	P99Us          float64 `json:"p99_us,omitempty"`
	OverheadPct    float64 `json:"overhead_pct,omitempty"`

	LogRecords int64 `json:"log_records,omitempty"`
	LogBytes   int64 `json:"log_bytes,omitempty"`
	RecoverNs  int64 `json:"recover_ns,omitempty"`

	ColdLoadMs float64 `json:"cold_load_ms,omitempty"`
	RestoreMs  float64 `json:"restore_ms,omitempty"`
	Speedup    float64 `json:"warmstart_speedup,omitempty"`

	Fingerprint  string `json:"fingerprint"`
	Reproducible bool   `json:"reproducible"`
}

// persistFingerprint extends the offload fingerprint with the
// persistence plane's counters: two runs fingerprint equal iff the
// workload, its timing, and every logged byte were bit-identical.
func persistFingerprint(r Result, f *dmsim.Fabric) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", r)
	fmt.Fprintf(h, "%+v%+v%+v%d", f.TotalNICStats(), f.TotalMNCPUStats(), f.PersistStats(), f.Frontier())
	return fmt.Sprintf("%016x", h.Sum64())
}

// persistMix is the overhead section's workload: write-heavy so the
// write-behind log sees every update, single-client for the
// reproducibility pin (contended write order is host-scheduling-
// dependent; see the offload experiment's mixed section).
var persistMix = ycsb.WorkloadA

// overheadPoint stands up one system on a fresh fabric — persistent
// into dir when non-empty — and measures the standard workload.
func overheadPoint(name string, sc Scale, dir string) (Result, string, error) {
	var fab *dmsim.Fabric
	sys, cfg, err := buildSystem(name, sc, 1, func(c *SystemConfig) {
		fcfg := dmsim.DefaultConfig()
		fcfg.MNs = 1
		fcfg.MNSize = sc.MNSize
		fcfg.ChunkBytes = 1 << 20
		fcfg.Persist.Dir = dir
		fab = dmsim.MustNewFabric(fcfg)
		c.Fabric = fab
		// Single-threaded load: parallel loaders race host-side for
		// virtual-time ties, which would break the double-run fingerprint.
		c.LoadClients = 1
	})
	if err != nil {
		return Result{}, "", err
	}
	r, err := runPoint(sys, cfg, persistMix, 1, sc.Ops/2, 31)
	if err != nil {
		return Result{}, "", err
	}
	return r, persistFingerprint(r, fab), nil
}

// runOverhead measures every system with the log off and on.
func runOverhead(sc Scale) ([]PersistRow, error) {
	var rows []PersistRow
	for _, name := range HeadToHeadSystems {
		var offMops float64
		for _, persist := range []bool{false, true} {
			point := func() (Result, string, error) {
				var dir string
				if persist {
					d, err := folio.ScratchDir("chime-persist-overhead")
					if err != nil {
						return Result{}, "", err
					}
					defer folio.RemoveDir(d)
					dir = d
				}
				return overheadPoint(name, sc, dir)
			}
			r, fp, err := point()
			if err != nil {
				return nil, fmt.Errorf("persist overhead %s persist=%t: %w", name, persist, err)
			}
			_, fp2, err := point()
			if err != nil {
				return nil, fmt.Errorf("persist overhead %s persist=%t rerun: %w", name, persist, err)
			}
			row := PersistRow{
				Section:        "overhead",
				System:         name,
				Persist:        persist,
				Clients:        r.Clients,
				Ops:            r.Ops,
				ThroughputMops: r.ThroughputMops,
				P50Us:          r.P50Us,
				P99Us:          r.P99Us,
				Fingerprint:    fp,
				Reproducible:   fp == fp2,
			}
			if !persist {
				offMops = r.ThroughputMops
			} else if offMops > 0 {
				row.OverheadPct = (offMops - r.ThroughputMops) / offMops * 100
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// runRecovery measures MN kill/restart cost against log length on a
// bare fabric: one client appends n word-writes, the MN crash-stops,
// and the restart's replay cost is read off the recovery stats.
func runRecovery(sc Scale) ([]PersistRow, error) {
	lens := []int{sc.Ops / 8, sc.Ops / 2, sc.Ops * 2}
	var rows []PersistRow
	for _, n := range lens {
		if n < 256 {
			n = 256
		}
		point := func() (dmsim.RecoveryStats, dmsim.PersistStats, string, error) {
			dir, err := folio.ScratchDir("chime-persist-recovery")
			if err != nil {
				return dmsim.RecoveryStats{}, dmsim.PersistStats{}, "", err
			}
			defer folio.RemoveDir(dir)
			cfg := dmsim.DefaultConfig()
			cfg.MNs = 1
			cfg.MNSize = 64 << 20
			cfg.ChunkBytes = 1 << 20
			cfg.Persist.Dir = dir
			f := dmsim.MustNewFabric(cfg)
			c := f.NewClient()
			region, err := c.AllocRPC(0, 1<<20)
			if err != nil {
				return dmsim.RecoveryStats{}, dmsim.PersistStats{}, "", err
			}
			buf := make([]byte, 64)
			for i := 0; i < n; i++ {
				if err := c.Write(region.Add(uint64(i*64%(1<<20))), buf); err != nil {
					return dmsim.RecoveryStats{}, dmsim.PersistStats{}, "", err
				}
			}
			ps := f.PersistStats()
			if err := f.KillMN(0); err != nil {
				return dmsim.RecoveryStats{}, dmsim.PersistStats{}, "", err
			}
			stats, err := f.RestartMN(0)
			if err != nil {
				return dmsim.RecoveryStats{}, dmsim.PersistStats{}, "", err
			}
			h := fnv.New64a()
			fmt.Fprintf(h, "%+v%+v%d", stats, ps, f.Frontier())
			return stats, ps, fmt.Sprintf("%016x", h.Sum64()), nil
		}
		stats, ps, fp, err := point()
		if err != nil {
			return nil, fmt.Errorf("persist recovery n=%d: %w", n, err)
		}
		_, _, fp2, err := point()
		if err != nil {
			return nil, fmt.Errorf("persist recovery n=%d rerun: %w", n, err)
		}
		rows = append(rows, PersistRow{
			Section:      "recovery",
			System:       "fabric",
			Persist:      true,
			Ops:          int64(n),
			LogRecords:   ps.Records,
			LogBytes:     ps.Bytes,
			RecoverNs:    stats.RecoverNs,
			Fingerprint:  fp,
			Reproducible: fp == fp2,
		})
	}
	return rows, nil
}

// superOf extracts the tree's super-block address from a freshly built
// system (warm-start persists it as fabric metadata).
func superOf(sys System) (dmsim.GAddr, error) {
	switch s := sys.(type) {
	case *chimeSystem:
		return s.ix.Super(), nil
	case *shermanSystem:
		return s.ix.Super(), nil
	}
	return dmsim.NilGAddr, fmt.Errorf("bench: %s has no warm-start attach path", sys.Name())
}

// formatSuper / parseSuper round-trip a GAddr through the folio
// metadata section (a string table) via the packed-pointer encoding,
// the same 8-byte form remote pointers use on the wire.
func formatSuper(a dmsim.GAddr) string { return fmt.Sprintf("%#x", a.Pack()) }

func parseSuper(s string) (dmsim.GAddr, error) {
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return dmsim.NilGAddr, fmt.Errorf("bench: bad super meta %q: %w", s, err)
	}
	return dmsim.UnpackGAddr(v), nil
}

// attachWarm rebuilds a System on a warm-started fabric without any
// remote writes: the tree is taken from the restored MN image, the root
// pointer from the persisted metadata.
func attachWarm(name string, fab *dmsim.Fabric, cfg SystemConfig) (System, error) {
	super, err := parseSuper(fab.PersistMeta("super"))
	if err != nil {
		return nil, err
	}
	switch name {
	case "CHIME":
		ix, err := core.Attach(fab, chimeOptions(cfg), super)
		if err != nil {
			return nil, err
		}
		s := &chimeSystem{ix: ix, cn: ix.NewComputeNode(cfg.CacheBytes, cfg.HotspotBytes), comb: rdwc.NewCombiner()}
		s.cn.SetObserver(cfg.Obs.Sink())
		s.newC = withRDWC(cfg, s.comb, func() Client { return chimeClient{cl: s.cn.NewClient()} })
		return s, nil
	case "Sherman":
		ix, err := sherman.Attach(fab, shermanOptions(cfg), super)
		if err != nil {
			return nil, err
		}
		s := &shermanSystem{ix: ix, cn: ix.NewComputeNode(cfg.CacheBytes), comb: rdwc.NewCombiner()}
		s.cn.SetObserver(cfg.Obs.Sink())
		s.newC = withRDWC(cfg, s.comb, func() Client { return shermanClient{cl: s.cn.NewClient()} })
		return s, nil
	}
	return nil, fmt.Errorf("bench: %s has no warm-start attach path", name)
}

// warmstartPoint measures one system's cold-load vs restore wall-clock.
// The snapshot under dir is created on first use and reused thereafter
// (the -snapshot contract: load once, restore forever).
func warmstartPoint(name string, sc Scale, dir string) (PersistRow, error) {
	keys := SortedLoadKeys(sc.LoadN)
	// Multi-GB fabrics from earlier sections and phases must actually be
	// gone before each timed phase, or the wall-clock numbers measure the
	// host's memory pressure instead of the load-vs-restore work.
	freeMem := func() {
		runtime.GC()
		debug.FreeOSMemory()
	}

	// Cold: bootstrap + bulk load on a plain fabric, host-wall-timed.
	// (Wall time is the point: this is the host-side cost warm-start
	// amortizes, exactly like the scale experiment's capacity numbers.)
	freeMem()
	coldMs, err := func() (float64, error) {
		fabC := DefaultFabric(1, sc.MNSize)
		cfgC := baseConfig(fabC, sc, keys)
		start := time.Now() //lint:allow virtualclock warm-start compares host wall-clock by design
		if _, err := Factories[name](cfgC); err != nil {
			return 0, fmt.Errorf("cold load: %w", err)
		}
		return float64(time.Since(start).Microseconds()) / 1e3, nil //lint:allow virtualclock warm-start compares host wall-clock by design
	}()
	if err != nil {
		return PersistRow{}, err
	}

	pcfg := dmsim.DefaultConfig()
	pcfg.MNs = 1
	pcfg.MNSize = sc.MNSize
	pcfg.ChunkBytes = 1 << 20
	pcfg.Persist.Dir = dir

	// Load once: only if the snapshot is not already cached in dir.
	if !folio.Exists(folio.Join(dir, "mn0.folio")) {
		freeMem()
		if err := func() error {
			fabP := dmsim.MustNewFabric(pcfg)
			cfgP := baseConfig(fabP, sc, keys)
			sysP, err := Factories[name](cfgP)
			if err != nil {
				return fmt.Errorf("snapshot load: %w", err)
			}
			super, err := superOf(sysP)
			if err != nil {
				return err
			}
			if err := fabP.SetPersistMeta("super", formatSuper(super)); err != nil {
				return err
			}
			if err := fabP.SnapshotPersist(); err != nil {
				return err
			}
			return fabP.ClosePersist()
		}(); err != nil {
			return PersistRow{}, err
		}
	}

	// Warm: fabric restore + attach, twice — the fingerprint of a small
	// read-only run over each restore pins restore determinism.
	restore := func() (float64, string, error) {
		freeMem()
		fabW := dmsim.MustNewFabric(pcfg)
		cfgW := baseConfig(fabW, sc, keys)
		// Restore cost = the fabric's own restore work (file decode +
		// materialization, measured inside NewFabric) plus the attach.
		// Fabric-shell construction — dominated by the MN memory
		// allocation, whose cost swings ~100× with host heap state — is
		// excluded, exactly as the cold timer excludes it.
		start := time.Now() //lint:allow virtualclock warm-start compares host wall-clock by design
		sysW, err := attachWarm(name, fabW, cfgW)
		if err != nil {
			return 0, "", err
		}
		ms := float64(fabW.RestoreHostNs())/1e6 + float64(time.Since(start).Microseconds())/1e3 //lint:allow virtualclock warm-start compares host wall-clock by design
		r, err := runPoint(sysW, cfgW, offloadDeepMix, 1, 512, 17)
		if err != nil {
			return 0, "", fmt.Errorf("post-restore verification: %w", err)
		}
		return ms, persistFingerprint(r, fabW), nil
	}
	_, fp, err := restore()
	if err != nil {
		return PersistRow{}, err
	}
	restoreMs, fp2, err := restore()
	if err != nil {
		return PersistRow{}, err
	}

	row := PersistRow{
		Section:      "warmstart",
		System:       name,
		Persist:      true,
		ColdLoadMs:   coldMs,
		RestoreMs:    restoreMs,
		Fingerprint:  fp,
		Reproducible: fp == fp2,
	}
	if restoreMs > 0 {
		row.Speedup = coldMs / restoreMs
	}
	return row, nil
}

// RunPersist runs the three sections and returns the artifact rows.
func RunPersist(sc Scale, opts PersistOptions) ([]PersistRow, error) {
	systems := opts.Systems
	if len(systems) == 0 {
		systems = []string{"CHIME", "Sherman"}
	}
	rows, err := runOverhead(sc)
	if err != nil {
		return nil, err
	}
	rec, err := runRecovery(sc)
	if err != nil {
		return nil, err
	}
	rows = append(rows, rec...)

	snapRoot := opts.SnapshotDir
	if snapRoot == "" {
		d, err := folio.ScratchDir("chime-persist-warmstart")
		if err != nil {
			return nil, err
		}
		defer folio.RemoveDir(d)
		snapRoot = d
	}
	for _, name := range systems {
		row, err := warmstartPoint(name, sc, folio.Join(snapRoot, name))
		if err != nil {
			return nil, fmt.Errorf("persist warmstart %s: %w", name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatPersistRows renders the sweep as aligned per-section tables.
func FormatPersistRows(rows []PersistRow) string {
	out := fmt.Sprintf("%-10s %-8s %-7s %8s %10s %9s %9s %8s %10s %10s %10s %9s %8s %6s\n",
		"section", "system", "persist", "ops", "Mops", "p50(us)", "p99(us)", "ovhd%",
		"logRecs", "recoverUs", "coldMs", "restoreMs", "speedup", "repro")
	for _, r := range rows {
		out += fmt.Sprintf("%-10s %-8s %-7t %8d %10.3f %9.1f %9.1f %8.2f %10d %10.1f %10.1f %9.1f %8.1f %6t\n",
			r.Section, r.System, r.Persist, r.Ops, r.ThroughputMops, r.P50Us, r.P99Us,
			r.OverheadPct, r.LogRecords, float64(r.RecoverNs)/1e3, r.ColdLoadMs, r.RestoreMs,
			r.Speedup, r.Reproducible)
	}
	return out
}

// MarshalPersistJSON renders the rows as the BENCH_PERSIST.json
// artifact format.
func MarshalPersistJSON(sc Scale, opts PersistOptions, rows []PersistRow) ([]byte, error) {
	return json.MarshalIndent(struct {
		Experiment  string       `json:"experiment"`
		LoadN       int          `json:"load_n"`
		Ops         int          `json:"ops"`
		SnapshotDir string       `json:"snapshot_dir,omitempty"`
		Rows        []PersistRow `json:"rows"`
	}{
		Experiment:  "persist",
		LoadN:       sc.LoadN,
		Ops:         sc.Ops,
		SnapshotDir: opts.SnapshotDir,
		Rows:        rows,
	}, "", "  ")
}

func init() {
	register(Experiment{ID: "persist", Title: "Durability overhead, MN crash recovery cost, warm-start vs cold load", Run: Persist})
}

// Persist is the registered experiment wrapper around RunPersist.
func Persist(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# Persist: folio write-behind log overhead, recovery replay cost, warm-start\n")
	rows, err := RunPersist(sc, PersistOptions{})
	if err != nil {
		return err
	}
	fmt.Fprint(w, FormatPersistRows(rows))
	return nil
}
