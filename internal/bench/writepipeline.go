package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"chime/internal/dmsim"
	"chime/internal/obs"
	"chime/internal/rdwc"
	"chime/internal/ycsb"
)

// Pipelined multi-put experiment (async verb pipelining, write side).
// RunMultiPut drives a workload where ops accumulate into per-kind
// batches and are issued through the batch interfaces with a given
// pipeline depth: inserts via BatchWriter.MultiPut, updates via
// BatchWriter.UpdateBatch, reads via BatchSearcher.SearchBatch. Depth 1
// reproduces sequential writes through the same code path, so the sweep
// isolates what posting the lock CAS / window fetch / doorbell
// write+unlock of several keys concurrently buys.

// MultiPutConfig drives one RunMultiPut phase.
type MultiPutConfig struct {
	Mix          ycsb.Mix
	Clients      int
	OpsPerClient int
	// BatchSize is how many same-kind keys accumulate before a batch is
	// issued (default 64).
	BatchSize int
	// Depth is the pipeline depth passed to the batch interfaces.
	Depth     int
	ValueSize int
	KeySpace  *ycsb.KeySpace
	Seed      int64
}

// MultiPutResult extends the pipeline result with write-combining
// counters summed over the cohort's clients.
type MultiPutResult struct {
	MultiGetResult
	WriteCycles  int64
	CombinedKeys int64
}

// RunMultiPut executes the batched workload. The system's clients must
// implement BatchWriter (and BatchSearcher when the mix reads).
func RunMultiPut(sys System, cfg MultiPutConfig) (MultiPutResult, error) {
	if cfg.Clients <= 0 || cfg.OpsPerClient <= 0 {
		return MultiPutResult{}, fmt.Errorf("bench: bad multiput config %+v", cfg)
	}
	if cfg.KeySpace == nil {
		return MultiPutResult{}, fmt.Errorf("bench: MultiPutConfig.KeySpace required")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.Depth < 1 {
		cfg.Depth = 1
	}

	type clientOut struct {
		hist     *obs.Histogram
		ops      int64
		duration int64
		stats    dmsim.ClientStats
		cycles   int64
		combined int64
		err      error
	}
	outs := make([]clientOut, cfg.Clients)
	clients := make([]Client, cfg.Clients)
	for ci := range clients {
		clients[ci] = sys.NewClient()
		if _, ok := clients[ci].(BatchWriter); !ok {
			return MultiPutResult{}, fmt.Errorf("bench: %s clients do not implement MultiPut/UpdateBatch (RDWC enabled?)", sys.Name())
		}
		clients[ci].DM().JoinCohort()
	}
	var wg sync.WaitGroup
	for ci := 0; ci < cfg.Clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cl := clients[ci]
			defer cl.DM().LeaveCohort()
			bw := cl.(BatchWriter)
			bs, _ := cl.(BatchSearcher)
			gen, err := ycsb.NewGenerator(cfg.Mix, cfg.KeySpace, cfg.Seed+int64(ci)*7919)
			if err != nil {
				outs[ci].err = err
				return
			}
			h := obs.NewHistogram()
			dm := cl.DM()
			dm.ResetStats()
			start := dm.Now()
			value := make([]byte, cfg.ValueSize)

			// Per-kind pending batches. Values are the constant benchmark
			// payload, so one shared slice serves every slot.
			var readKeys, insKeys, updKeys []uint64
			var insVals, updVals [][]byte
			amortize := func(t0 int64, n int) {
				per := (dm.Now() - t0) / int64(n)
				for i := 0; i < n; i++ {
					h.Observe(per)
				}
			}
			flushBatch := func(kind string, run func() []error, n func() int) error {
				if n() == 0 {
					return nil
				}
				t0 := dm.Now()
				errs := run()
				for _, e := range errs {
					if e != nil && !errors.Is(e, ErrNotFound) {
						return fmt.Errorf("%s batch: %w", kind, e)
					}
				}
				amortize(t0, len(errs))
				return nil
			}
			flushReads := func() error {
				if len(readKeys) == 0 {
					return nil
				}
				if bs == nil {
					return fmt.Errorf("bench: %s clients do not implement SearchBatch", sys.Name())
				}
				err := flushBatch("read", func() []error {
					_, errs := bs.SearchBatch(readKeys, cfg.Depth)
					return errs
				}, func() int { return len(readKeys) })
				readKeys = readKeys[:0]
				return err
			}
			flushInserts := func() error {
				err := flushBatch("insert", func() []error {
					return bw.MultiPut(insKeys, insVals, cfg.Depth)
				}, func() int { return len(insKeys) })
				insKeys, insVals = insKeys[:0], insVals[:0]
				return err
			}
			flushUpdates := func() error {
				err := flushBatch("update", func() []error {
					return bw.UpdateBatch(updKeys, updVals, cfg.Depth)
				}, func() int { return len(updKeys) })
				updKeys, updVals = updKeys[:0], updVals[:0]
				return err
			}
			fail := func(i int, err error) {
				outs[ci].err = fmt.Errorf("bench: client %d op %d: %w", ci, i, err)
			}
			for i := 0; i < cfg.OpsPerClient; i++ {
				op := gen.Next()
				switch op.Kind {
				case ycsb.OpRead:
					readKeys = append(readKeys, op.Key)
					if len(readKeys) >= cfg.BatchSize {
						if err := flushReads(); err != nil {
							fail(i, err)
							return
						}
					}
				case ycsb.OpInsert:
					insKeys, insVals = append(insKeys, op.Key), append(insVals, value)
					if len(insKeys) >= cfg.BatchSize {
						if err := flushInserts(); err != nil {
							fail(i, err)
							return
						}
					}
				case ycsb.OpUpdate:
					updKeys, updVals = append(updKeys, op.Key), append(updVals, value)
					if len(updKeys) >= cfg.BatchSize {
						if err := flushUpdates(); err != nil {
							fail(i, err)
							return
						}
					}
				default:
					// Scan / RMW flush everything and run synchronously.
					if err := flushReads(); err != nil {
						fail(i, err)
						return
					}
					if err := flushInserts(); err != nil {
						fail(i, err)
						return
					}
					if err := flushUpdates(); err != nil {
						fail(i, err)
						return
					}
					t0 := dm.Now()
					var err error
					switch op.Kind {
					case ycsb.OpScan:
						_, err = cl.Scan(op.Key, op.ScanLen)
					case ycsb.OpReadModifyWrite:
						if _, err = cl.Search(op.Key); err == nil || errors.Is(err, ErrNotFound) {
							err = cl.Update(op.Key, value)
						}
					}
					if err != nil && !errors.Is(err, ErrNotFound) {
						fail(i, err)
						return
					}
					h.Observe(dm.Now() - t0)
				}
			}
			if err := flushReads(); err != nil {
				fail(cfg.OpsPerClient, err)
				return
			}
			if err := flushInserts(); err != nil {
				fail(cfg.OpsPerClient, err)
				return
			}
			if err := flushUpdates(); err != nil {
				fail(cfg.OpsPerClient, err)
				return
			}
			out := clientOut{
				hist:     h,
				ops:      int64(cfg.OpsPerClient),
				duration: dm.Now() - start,
				stats:    dm.Stats(),
			}
			if wr, ok := cl.(WriteCombineReporter); ok {
				out.cycles, out.combined = wr.WriteCombineStats()
			}
			outs[ci] = out
		}(ci)
	}
	wg.Wait()

	total := obs.NewHistogram()
	var ops, maxDur, maxInflight, cycles, combined int64
	var stats dmsim.ClientStats
	for _, o := range outs {
		if o.err != nil {
			return MultiPutResult{}, o.err
		}
		total.Merge(o.hist)
		ops += o.ops
		if o.duration > maxDur {
			maxDur = o.duration
		}
		if o.stats.MaxInflight > maxInflight {
			maxInflight = o.stats.MaxInflight
		}
		stats.Trips += o.stats.Trips
		stats.BytesRead += o.stats.BytesRead
		stats.BytesWritten += o.stats.BytesWritten
		cycles += o.cycles
		combined += o.combined
	}
	if maxDur == 0 {
		maxDur = 1
	}
	// Fold the batch pipeline's per-leaf combining into the CN-level
	// combiner counter, so one figure covers both coalescing layers.
	if cs, ok := sys.(interface{ Combiner() *rdwc.Combiner }); ok {
		cs.Combiner().NoteExternalCombined(combined)
	}
	return MultiPutResult{
		MultiGetResult: MultiGetResult{
			Result: Result{
				System:         sys.Name(),
				Mix:            cfg.Mix.Name,
				Clients:        cfg.Clients,
				Ops:            ops,
				ThroughputMops: float64(ops) * 1e3 / float64(maxDur),
				P50Us:          float64(total.Quantile(0.50)) / 1e3,
				P99Us:          float64(total.Quantile(0.99)) / 1e3,
				TripsPerOp:     float64(stats.Trips) / float64(ops),
				ReadBytes:      float64(stats.BytesRead) / float64(ops),
				WriteBytes:     float64(stats.BytesWritten) / float64(ops),
				CacheBytes:     sys.CacheBytes(),
			},
			Depth:       cfg.Depth,
			MaxInflight: maxInflight,
		},
		WriteCycles:  cycles,
		CombinedKeys: combined,
	}, nil
}

// WritepipeRow is one point of the write-pipeline depth sweep,
// JSON-serializable for the committed BENCH_WRITEPIPE.json artifact.
type WritepipeRow struct {
	System          string  `json:"system"`
	Mix             string  `json:"mix"`
	Depth           int     `json:"depth"`
	Clients         int     `json:"clients"`
	Ops             int64   `json:"ops"`
	ThroughputMops  float64 `json:"throughput_mops"`
	SpeedupVsDepth1 float64 `json:"speedup_vs_depth1"`
	P50Us           float64 `json:"p50_us"`
	P99Us           float64 `json:"p99_us"`
	TripsPerOp      float64 `json:"trips_per_op"`
	MaxInflight     int64   `json:"max_inflight"`
	WriteCycles     int64   `json:"write_cycles"`
	CombinedKeys    int64   `json:"combined_keys"`
}

// RunWritepipe sweeps batch-write pipeline depth for CHIME and Sherman
// under YCSB A (50% read / 50% update, zipfian) and YCSB LOAD (100%
// insert) with a COLD internal-node cache: every descent pays remote
// reads, the regime where posting several write state machines at once
// matters most. RDWC is disabled so the harness reaches the concrete
// batch interfaces; the pipeline's own per-leaf combining stands in for
// it and is reported per row.
func RunWritepipe(sc Scale, depths []int) ([]WritepipeRow, error) {
	if len(depths) == 0 {
		depths = PipelineDepths
	}
	clients := pipelineClients(sc)
	var rows []WritepipeRow
	for _, name := range []string{"CHIME", "Sherman"} {
		for _, mix := range []ycsb.Mix{ycsb.WorkloadA, ycsb.WorkloadLoad} {
			sys, cfg, err := buildSystem(name, sc, 1, func(c *SystemConfig) {
				c.CacheBytes = 0 // cold: every internal hop is remote
				c.DisableRDWC = true
			})
			if err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			var base float64
			for _, depth := range depths {
				r, err := RunMultiPut(sys, MultiPutConfig{
					Mix:          mix,
					Clients:      clients,
					OpsPerClient: maxInt(sc.Ops/clients, 1),
					Depth:        depth,
					ValueSize:    cfg.ValueSize,
					KeySpace:     NewKeySpaceFor(cfg.LoadKeys),
					Seed:         31,
				})
				if err != nil {
					return nil, fmt.Errorf("%s %s depth=%d: %w", name, mix.Name, depth, err)
				}
				if base == 0 {
					base = r.ThroughputMops
				}
				rows = append(rows, WritepipeRow{
					System:          name,
					Mix:             mix.Name,
					Depth:           depth,
					Clients:         clients,
					Ops:             r.Ops,
					ThroughputMops:  r.ThroughputMops,
					SpeedupVsDepth1: r.ThroughputMops / base,
					P50Us:           r.P50Us,
					P99Us:           r.P99Us,
					TripsPerOp:      r.TripsPerOp,
					MaxInflight:     r.MaxInflight,
					WriteCycles:     r.WriteCycles,
					CombinedKeys:    r.CombinedKeys,
				})
			}
		}
	}
	return rows, nil
}

// FormatWritepipeRows renders the sweep as an aligned table.
func FormatWritepipeRows(rows []WritepipeRow) string {
	out := fmt.Sprintf("%-10s %-6s %6s %8s %10s %9s %9s %9s %8s %9s %8s %9s\n",
		"system", "mix", "depth", "clients", "Mops", "speedup", "p50(us)", "p99(us)", "trips", "inflight", "cycles", "combined")
	for _, r := range rows {
		out += fmt.Sprintf("%-10s %-6s %6d %8d %10.3f %9.2f %9.1f %9.1f %8.2f %9d %8d %9d\n",
			r.System, r.Mix, r.Depth, r.Clients, r.ThroughputMops,
			r.SpeedupVsDepth1, r.P50Us, r.P99Us, r.TripsPerOp, r.MaxInflight,
			r.WriteCycles, r.CombinedKeys)
	}
	return out
}

// MarshalWritepipeJSON renders the rows as the BENCH_WRITEPIPE.json
// artifact format.
func MarshalWritepipeJSON(sc Scale, rows []WritepipeRow) ([]byte, error) {
	return json.MarshalIndent(struct {
		Experiment string         `json:"experiment"`
		LoadN      int            `json:"load_n"`
		Ops        int            `json:"ops"`
		ColdCache  bool           `json:"cold_cache"`
		Rows       []WritepipeRow `json:"rows"`
	}{
		Experiment: "writepipe",
		LoadN:      sc.LoadN,
		Ops:        sc.Ops,
		ColdCache:  true,
		Rows:       rows,
	}, "", "  ")
}

func init() {
	register(Experiment{ID: "writepipe", Title: "Batch-write pipeline depth sweep (cold cache)", Run: Writepipe})
}

// Writepipe is the registered experiment wrapper around RunWritepipe.
func Writepipe(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# Write-pipeline depth sweep: posted lock/fetch/write batches, cold internal-node cache\n")
	rows, err := RunWritepipe(sc, nil)
	if err != nil {
		return err
	}
	fmt.Fprint(w, FormatWritepipeRows(rows))
	return nil
}
