package bench

import (
	"strings"
	"testing"

	"chime/internal/dmsim"
	"chime/internal/obs"
	"chime/internal/ycsb"
)

// TestAttributionCoverage pins the flight ledger's accounting quality:
// on a contended read/write mix, the per-phase shares must explain at
// least 95% of measured latency — mean and p99 tail — for every op
// class of every system. The ledger is built from clock deltas dmsim
// computes anyway, so in practice coverage is ~100%; a drop below 95%
// means some code path advances a client clock without charging the
// flight.
func TestAttributionCoverage(t *testing.T) {
	sc := SmallScale
	for _, name := range HeadToHeadSystems {
		_, fs, _, err := attributionPoint(name, sc, dmsim.SchedulerGate, ycsb.WorkloadA,
			false, sc.Clients, sc.Ops, 4, true)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(fs.Attribution.Classes) == 0 {
			t.Fatalf("%s: no op classes recorded", name)
		}
		for _, ca := range fs.Attribution.Classes {
			if ca.Coverage < 0.95 {
				t.Errorf("%s/%s: mean coverage %.3f < 0.95 (shares %v)",
					name, ca.Class, ca.Coverage, ca.MeanShare)
			}
			if ca.TailCoverage < 0.95 {
				t.Errorf("%s/%s: tail coverage %.3f < 0.95 (shares %v)",
					name, ca.Class, ca.TailCoverage, ca.TailShare)
			}
		}
	}
}

// TestFlightZeroPerturbation proves the recorder never moves a clock:
// for every system, under both schedulers, a recorder-off and a
// recorder-on run from fresh builds must produce bit-identical run
// fingerprints (Result plus NIC, MN-CPU and frontier totals). The off
// and on runs do different host work, so the points must be
// interleaving-independent, not just double-run stable: pinPoints
// keeps gate-mode pins single-client (one shared NIC shard arbitrates
// same-window arrivals in host lock order) and exercises multi-client
// only under the event loop's lane-private shards.
func TestFlightZeroPerturbation(t *testing.T) {
	sc := SmallScale
	for _, sched := range []dmsim.SchedulerKind{dmsim.SchedulerGate, dmsim.SchedulerEventLoop} {
		points := pinPoints(sched, sc)
		for _, name := range HeadToHeadSystems {
			for _, pt := range points {
				_, _, fpOff, err := attributionPoint(name, sc, sched, pt.mix, pt.coldCache,
					pt.clients, sc.Ops/4, 4, false)
				if err != nil {
					t.Fatalf("%s/%s/%s off: %v", schedulerName(sched), name, pt.mix.Name, err)
				}
				_, fs, fpOn, err := attributionPoint(name, sc, sched, pt.mix, pt.coldCache,
					pt.clients, sc.Ops/4, 4, true)
				if err != nil {
					t.Fatalf("%s/%s/%s on: %v", schedulerName(sched), name, pt.mix.Name, err)
				}
				if fpOff != fpOn {
					t.Errorf("%s/%s/%s: recorder perturbed the run: off=%s on=%s",
						schedulerName(sched), name, pt.mix.Name, fpOff, fpOn)
				}
				if fs == nil || len(fs.Attribution.Classes) == 0 {
					t.Errorf("%s/%s/%s: recorder-on run recorded nothing",
						schedulerName(sched), name, pt.mix.Name)
				}
			}
		}
	}
}

// TestAttributionReportRendering sanity-checks the table renderers and
// the metrics-v4 flight section plumbing on one cheap point.
func TestAttributionReportRendering(t *testing.T) {
	sc := SmallScale
	po := NewObserver(false)
	po.EnableFlightRecorder(obs.FlightConfig{TopK: 2})
	scp := sc
	scp.Obs = po
	sys, cfg, err := buildSystem("CHIME", scp, 1, func(c *SystemConfig) {
		c.LoadClients = 1
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := runPoint(sys, cfg, ycsb.WorkloadA, 4, sc.Ops/4, 23)
	if err != nil {
		t.Fatal(err)
	}
	fs := po.FlightReport()
	if fs == nil {
		t.Fatal("no flight report despite recorder enabled")
	}
	rows := []AttributionRow{{
		Section: "attrib", Scheduler: "gate", System: "CHIME", Mix: "A",
		Clients: r.Clients, Ops: r.Ops, Attribution: fs.Attribution,
	}}
	table := FormatAttributionRows(rows)
	for _, want := range []string{"search", "update", "descend"} {
		if !strings.Contains(table, want) {
			t.Errorf("attribution table missing %q:\n%s", want, table)
		}
	}
	if len(fs.Timeline.Windows) == 0 {
		t.Fatal("timeline recorded no windows")
	}
	if out := FormatTimeline(fs.Timeline); !strings.Contains(out, "nic%") {
		t.Errorf("timeline table malformed:\n%s", out)
	}
	mj, err := po.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{MetricsSchema, `"flight"`, `"attribution"`, `"timeline"`} {
		if !strings.Contains(string(mj), want) {
			t.Errorf("metrics JSON missing %q", want)
		}
	}
}
