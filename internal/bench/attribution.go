package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"chime/internal/dmsim"
	"chime/internal/obs"
	"chime/internal/ycsb"
)

// Attribution experiment: the flight recorder's tail-latency story on
// the paper's four systems. Two sections:
//
//	attrib — contended zipfian workloads (the 50/50 update mix A and the
//	         read-only mix C) at the scale's default client count, with
//	         the flight recorder on: per-op-class mean and p99 phase
//	         shares, slowest-op exemplars, and the virtual-time timeline.
//	         The shares must explain >= 95% of measured latency (pinned
//	         by TestAttributionCoverage).
//	pin    — the zero-perturbation guarantee: deterministic points run
//	         twice from fresh builds, recorder off then on, per
//	         scheduler; the run fingerprints (Result + NIC + MN-CPU +
//	         frontier state) must be bit-identical. Recording observes
//	         clock deltas dmsim already computed, so it can never move a
//	         clock — this section proves it, per system and scheduler.
//
// The pin section reuses the offload experiment's determinism recipe —
// single-threaded bulk load, and for multi-client points a cold CN
// cache plus no RDWC — but it needs one notch more than "double runs
// reproduce": the off and on runs do DIFFERENT host work by design, so
// a pin point must be interleaving-INDEPENDENT, not merely stable.
// Gate mode fails that bar with concurrent clients: every client's
// verbs funnel through the single NIC shard, whose queueing recurrence
// resolves same-window arrivals in host lock-acquisition order, so a
// GC pause shifted by the recorder's own allocations can legally
// reorder arrivals and move virtual time. Gate pins therefore run one
// client (a fully sequential virtual trajectory); the event loop keeps
// the multi-client point, because its lane-private NIC shards decouple
// the clients' virtual clocks no matter how the host schedules them.
// The attrib section has no such restriction — contended writes are
// exactly the regime whose tail is worth attributing — so it reports
// no fingerprints.

// attribPinMix is the pin section's read-only workload: uniform point
// reads commute, so double runs are bit-identical.
var attribPinMix = ycsb.Mix{Name: "Cu", ReadPct: 1.0, Dist: ycsb.DistUniform}

// pinPoint is one zero-perturbation double-run configuration.
type pinPoint struct {
	mix       ycsb.Mix
	coldCache bool
	clients   int
	ops       int
}

// pinPoints returns the pin section's points for one scheduler. The
// cold read-only point is multi-client only under the event loop,
// whose lane-private NIC shards keep concurrent clients' virtual
// clocks decoupled from host scheduling; gate mode shares one NIC
// shard across the cohort and resolves same-window arrivals in host
// lock order, so its cold pin runs a single client (see the package
// comment for the full argument).
func pinPoints(sched dmsim.SchedulerKind, sc Scale) []pinPoint {
	coldClients := 1
	if sched == dmsim.SchedulerEventLoop {
		coldClients = 4
	}
	return []pinPoint{
		{attribPinMix, true, coldClients, sc.Ops / 2},
		{ycsb.WorkloadA, false, 1, sc.Ops / 4},
	}
}

// AttributionOptions parameterizes RunAttribution.
type AttributionOptions struct {
	// TopK bounds the slowest-exemplar capture per op class (default 4
	// to keep the artifact small; the recorder default is 8).
	TopK int

	// Schedulers lists the cohort schedulers the pin section proves
	// zero perturbation under (default: gate and event loop). The
	// attrib section runs under the first.
	Schedulers []dmsim.SchedulerKind
}

// AttributionRow is one measured point, JSON-serializable for the
// committed BENCH_ATTRIB.json artifact.
type AttributionRow struct {
	Section        string  `json:"section"`
	Scheduler      string  `json:"scheduler"`
	System         string  `json:"system"`
	Mix            string  `json:"mix"`
	Clients        int     `json:"clients"`
	Ops            int64   `json:"ops"`
	ThroughputMops float64 `json:"throughput_mops"`
	P50Us          float64 `json:"p50_us"`
	P99Us          float64 `json:"p99_us"`

	Attribution obs.AttributionReport `json:"attribution"`

	// Pin-section fields: fingerprints of the recorder-off and
	// recorder-on runs, which must match (Unperturbed).
	FingerprintOff string `json:"fingerprint_recorder_off,omitempty"`
	FingerprintOn  string `json:"fingerprint_recorder_on,omitempty"`
	Unperturbed    bool   `json:"unperturbed,omitempty"`
}

// attributionPoint stands up one fresh system and measures one point,
// optionally with a flight recorder attached. It returns the flight
// report (nil when record is false) and the run fingerprint.
func attributionPoint(name string, sc Scale, sched dmsim.SchedulerKind, mix ycsb.Mix,
	coldCache bool, clients, ops, topK int, record bool) (Result, *FlightSection, string, error) {
	po := NewObserver(false)
	if record {
		po.EnableFlightRecorder(obs.FlightConfig{TopK: topK})
	}
	scp := sc
	scp.Obs = po
	var fab *dmsim.Fabric
	sys, cfg, err := buildSystem(name, scp, 1, func(c *SystemConfig) {
		fcfg := dmsim.DefaultConfig()
		fcfg.MNs = 1
		fcfg.MNSize = sc.MNSize
		fcfg.ChunkBytes = 1 << 20
		fcfg.Scheduler = sched
		fab = dmsim.MustNewFabric(fcfg)
		c.Fabric = fab
		// Single-threaded bulk load: parallel loaders race host-side for
		// virtual-time ties, which would break the pin fingerprints.
		c.LoadClients = 1
		if coldCache {
			// No CN cache and no RDWC: no shared LRU or combiner whose
			// behavior depends on host interleaving (see offloadPoint).
			c.CacheBytes = 0
			c.HotspotBytes = 0
			c.DisableRDWC = true
		}
	})
	if err != nil {
		return Result{}, nil, "", err
	}
	r, err := runPoint(sys, cfg, mix, clients, ops, 23)
	if err != nil {
		return Result{}, nil, "", err
	}
	return r, po.FlightReport(), offloadFingerprint(r, fab), nil
}

// RunAttribution measures both sections for every system. It returns
// the rows plus one sample timeline (the first system's contended
// point) for the committed timeline artifact.
func RunAttribution(sc Scale, opts AttributionOptions) ([]AttributionRow, *obs.TimelineReport, error) {
	if opts.TopK <= 0 {
		opts.TopK = 4
	}
	if len(opts.Schedulers) == 0 {
		opts.Schedulers = []dmsim.SchedulerKind{dmsim.SchedulerGate, dmsim.SchedulerEventLoop}
	}
	var rows []AttributionRow
	var sample *obs.TimelineReport

	// attrib: contended zipfian points, recorder on, first scheduler.
	attribSched := opts.Schedulers[0]
	for _, name := range HeadToHeadSystems {
		for _, mix := range []ycsb.Mix{ycsb.WorkloadA, ycsb.WorkloadC} {
			r, fs, _, err := attributionPoint(name, sc, attribSched, mix, false, sc.Clients, sc.Ops, opts.TopK, true)
			if err != nil {
				return nil, nil, fmt.Errorf("attribution %s/%s: %w", name, mix.Name, err)
			}
			rows = append(rows, AttributionRow{
				Section:        "attrib",
				Scheduler:      schedulerName(attribSched),
				System:         name,
				Mix:            mix.Name,
				Clients:        r.Clients,
				Ops:            r.Ops,
				ThroughputMops: r.ThroughputMops,
				P50Us:          r.P50Us,
				P99Us:          r.P99Us,
				Attribution:    fs.Attribution,
			})
			if sample == nil {
				tl := fs.Timeline
				sample = &tl
			}
		}
	}

	// pin: zero-perturbation double runs per scheduler. One read-only
	// cold point and one write-bearing single-client point. The cold
	// point runs multi-client only under the event loop (lane-private
	// NIC shards); under the gate all clients share one NIC shard whose
	// arbitration follows host lock order, so its pin must be a single
	// client to stay interleaving-independent (see the package comment).
	for _, sched := range opts.Schedulers {
		points := pinPoints(sched, sc)
		for _, name := range HeadToHeadSystems {
			for _, pt := range points {
				rOff, _, fpOff, err := attributionPoint(name, sc, sched, pt.mix, pt.coldCache, pt.clients, pt.ops, opts.TopK, false)
				if err != nil {
					return nil, nil, fmt.Errorf("attribution pin %s/%s/%s off: %w", schedulerName(sched), name, pt.mix.Name, err)
				}
				_, fs, fpOn, err := attributionPoint(name, sc, sched, pt.mix, pt.coldCache, pt.clients, pt.ops, opts.TopK, true)
				if err != nil {
					return nil, nil, fmt.Errorf("attribution pin %s/%s/%s on: %w", schedulerName(sched), name, pt.mix.Name, err)
				}
				rows = append(rows, AttributionRow{
					Section:        "pin",
					Scheduler:      schedulerName(sched),
					System:         name,
					Mix:            pt.mix.Name,
					Clients:        rOff.Clients,
					Ops:            rOff.Ops,
					ThroughputMops: rOff.ThroughputMops,
					P50Us:          rOff.P50Us,
					P99Us:          rOff.P99Us,
					Attribution:    fs.Attribution,
					FingerprintOff: fpOff,
					FingerprintOn:  fpOn,
					Unperturbed:    fpOff == fpOn,
				})
			}
		}
	}
	return rows, sample, nil
}

// attribPhaseColumns orders the share columns by overall weight so the
// tables lead with the phases that matter; zero-everywhere phases are
// dropped.
func attribPhaseColumns(rows []AttributionRow) []string {
	weight := map[string]float64{}
	for _, r := range rows {
		for _, ca := range r.Attribution.Classes {
			for ph, s := range ca.MeanShare {
				weight[ph] += s
			}
			for ph, s := range ca.TailShare {
				weight[ph] += s
			}
		}
	}
	var cols []string
	for _, ph := range obs.PhaseNames() {
		if weight[ph] > 0 {
			cols = append(cols, ph)
		}
	}
	sort.SliceStable(cols, func(i, j int) bool { return weight[cols[i]] > weight[cols[j]] })
	return cols
}

// FormatAttributionRows renders the attrib section as two aligned
// tables — mean-latency shares and p99-tail shares — one line per
// system, mix and op class, plus the pin section's verdict lines.
func FormatAttributionRows(rows []AttributionRow) string {
	cols := attribPhaseColumns(rows)
	header := func(title string) string {
		out := fmt.Sprintf("## %s\n%-6s %-8s %-4s %-11s %8s %9s %9s %6s", title,
			"sched", "system", "mix", "class", "ops", "mean(us)", "p99(us)", "cov%")
		for _, ph := range cols {
			out += fmt.Sprintf(" %12s", ph)
		}
		return out + "\n"
	}
	shares := func(share obs.PhaseShare) string {
		var out string
		for _, ph := range cols {
			out += fmt.Sprintf(" %11.1f%%", share[ph]*100)
		}
		return out
	}
	var mean, tail, pin string
	for _, r := range rows {
		if r.Section == "pin" {
			pin += fmt.Sprintf("%-6s %-8s %-4s clients=%-3d off=%s on=%s unperturbed=%t\n",
				r.Scheduler, r.System, r.Mix, r.Clients, r.FingerprintOff, r.FingerprintOn, r.Unperturbed)
			continue
		}
		for _, ca := range r.Attribution.Classes {
			prefix := fmt.Sprintf("%-6s %-8s %-4s %-11s %8d %9.1f %9.1f",
				r.Scheduler, r.System, r.Mix, ca.Class, ca.Ops, ca.MeanNs/1e3, float64(ca.P99Ns)/1e3)
			mean += fmt.Sprintf("%s %5.1f%%%s\n", prefix, ca.Coverage*100, shares(ca.MeanShare))
			tail += fmt.Sprintf("%s %5.1f%%%s\n", prefix, ca.TailCoverage*100, shares(ca.TailShare))
		}
	}
	out := header("Mean-latency attribution") + mean
	out += "\n" + header("p99-tail attribution (ops at and above the p99 bucket)") + tail
	if pin != "" {
		out += "\n## Zero-perturbation pin (recorder off vs on, fresh builds)\n" + pin
	}
	return out
}

// FormatTimeline renders a timeline report as an aligned table, one
// line per populated window.
func FormatTimeline(tl obs.TimelineReport) string {
	out := fmt.Sprintf("window=%dns origin=%dns dropped=%d\n%10s %8s %8s %9s %9s %7s %7s\n",
		tl.WindowNs, tl.OriginNs, tl.Dropped,
		"t(us)", "ops", "Mops", "p50(us)", "p99(us)", "nic%", "mncpu%")
	for _, w := range tl.Windows {
		out += fmt.Sprintf("%10.0f %8d %8.3f %9.1f %9.1f %7.1f %7.1f\n",
			float64(w.StartNs-tl.OriginNs)/1e3, w.Ops, w.ThroughputMops,
			float64(w.P50Ns)/1e3, float64(w.P99Ns)/1e3,
			w.NICUtilization*100, w.MNUtilization*100)
	}
	return out
}

// MarshalAttribJSON renders the rows and the sample timeline as the
// BENCH_ATTRIB.json artifact format.
func MarshalAttribJSON(sc Scale, opts AttributionOptions, rows []AttributionRow, sample *obs.TimelineReport) ([]byte, error) {
	return json.MarshalIndent(struct {
		Experiment string              `json:"experiment"`
		LoadN      int                 `json:"load_n"`
		Ops        int                 `json:"ops"`
		TopK       int                 `json:"top_k"`
		Rows       []AttributionRow    `json:"rows"`
		Timeline   *obs.TimelineReport `json:"timeline_sample,omitempty"`
	}{
		Experiment: "attribution",
		LoadN:      sc.LoadN,
		Ops:        sc.Ops,
		TopK:       opts.TopK,
		Rows:       rows,
		Timeline:   sample,
	}, "", "  ")
}

func init() {
	register(Experiment{ID: "attribution", Title: "Flight-recorder tail-latency attribution and zero-perturbation pin", Run: Attribution})
}

// Attribution is the registered experiment wrapper around
// RunAttribution.
func Attribution(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# Attribution: per-phase latency shares (mean and p99 tail), zero-perturbation pin\n")
	rows, sample, err := RunAttribution(sc, AttributionOptions{})
	if err != nil {
		return err
	}
	fmt.Fprint(w, FormatAttributionRows(rows))
	if sample != nil {
		fmt.Fprintf(w, "\n## Timeline sample (%s, mix %s)\n", HeadToHeadSystems[0], ycsb.WorkloadA.Name)
		fmt.Fprint(w, FormatTimeline(*sample))
	}
	return nil
}
