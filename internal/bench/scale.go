package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os" //lint:allow durableio host-capacity experiment reads /proc/self/status (RSS) by design
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"chime/internal/dmsim"
)

// Scale experiment: host-side capacity of the simulator itself. Every
// other experiment measures virtual time (what the simulated fabric
// does); this one measures how many simulated verbs per wall-clock
// second the host can push through dmsim as the client count sweeps
// 1k→100k, comparing the condvar time gate against the batch event
// loop (ISSUE 6 / ROADMAP item 3). The workload is deliberately
// index-free — depth-pipelined 64 B reads against per-client disjoint
// slots — so the numbers isolate the scheduler + verb hot path, and so
// multi-lane event-loop runs stay bit-identical (no cross-lane races on
// remote lines).

// ScaleOptions parameterizes RunScale beyond the shared Scale knobs.
type ScaleOptions struct {
	// ClientSweep is the simulated-client axis (default 1k, 10k, 100k).
	ClientSweep []int
	// OpsPerClient is the measured verbs each client issues (default
	// scaled so every point issues at least ~2M verbs total).
	OpsPerClient int
	// Depth is the posted-verb pipeline depth (default 8).
	Depth int
	// Lanes is the event-loop lane count (default 1: single-core hosts
	// gain nothing from more, and 1 keeps shard timing bit-compatible
	// with the gate's single-server NIC).
	Lanes int
	// QuantumRTTs pins the cohort window width (base RTTs) for every
	// point. The default 0 is auto mode: each point runs both schedulers
	// at the faithful window (faithfulQuantumRTTs, the width index
	// experiments use — where the schedulers are compared head to head)
	// plus the event loop at a capacity window that scales with the
	// cohort (capacityQuantumRTTs), the loosely-coupled regime that
	// shows the simulator's raw verb ceiling. Window width trades
	// synchronization fidelity for park amortization identically in both
	// schedulers, so cross-scheduler speedups are only quoted between
	// same-quantum rows.
	QuantumRTTs int
	// GateCap caps the client count for condvar-gate points (default
	// 10k): the gate's O(members) broadcast makes 100k-member windows
	// take minutes of host time, which is the finding, not a bug worth
	// waiting on in every run.
	GateCap int
	// Verify re-runs each point and records whether the fingerprint —
	// every client clock and counter plus the NIC totals — reproduced
	// bit-identically.
	Verify bool
}

func (o ScaleOptions) withDefaults() ScaleOptions {
	if len(o.ClientSweep) == 0 {
		o.ClientSweep = []int{1_000, 10_000, 100_000}
	}
	if o.Depth <= 0 {
		o.Depth = 8
	}
	if o.Lanes <= 0 {
		o.Lanes = 1
	}
	if o.GateCap <= 0 {
		o.GateCap = 10_000
	}
	return o
}

// ScaleRow is one measured point, JSON-serializable for the committed
// BENCH_SCALE.json artifact.
type ScaleRow struct {
	Scheduler    string  `json:"scheduler"` // "gate" | "event"
	Clients      int     `json:"clients"`
	Lanes        int     `json:"lanes"`
	Depth        int     `json:"depth"`
	QuantumRTTs  int     `json:"quantum_rtts"`
	Ops          int64   `json:"ops"` // simulated verbs issued
	HostSeconds  float64 `json:"host_seconds"`
	HostMops     float64 `json:"host_mops"` // simulated verbs / host second, millions
	VirtualMs    float64 `json:"virtual_ms"`
	RSSMB        float64 `json:"rss_mb"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	Fingerprint  string  `json:"fingerprint"`
	Reproducible *bool   `json:"reproducible,omitempty"` // set by Verify
}

// scalePoint runs one (scheduler, clients) point and returns its row.
func scalePoint(mode dmsim.SchedulerKind, clients, ops, depth, lanes, quantumRTTs int) (ScaleRow, error) {
	cfg := dmsim.DefaultConfig()
	cfg.Scheduler = mode
	cfg.Lanes = lanes
	cfg.QuantumRTTs = quantumRTTs
	// One private 64 B slot per client (plus the nil line at offset 0).
	cfg.MNSize = (clients + 2) * 64
	f, err := dmsim.NewFabric(cfg)
	if err != nil {
		return ScaleRow{}, err
	}

	cls := make([]*dmsim.Client, clients)
	for i := range cls {
		cls[i] = f.NewClient()
		cls[i].JoinCohort() // join order fixes event-loop lane assignment
	}

	// Spawn every worker and let it allocate its scratch before the clock
	// starts: the measured window covers the steady-state verb loop, not
	// goroutine creation. Steady state is allocation-free (pinned by
	// TestVerbRoundTripZeroAllocs), so the collector is also disabled for
	// the window — with it on, periodic cycles scanning 100k goroutine
	// stacks measure the collector, not the scheduler. AllocsPerOp stays
	// honest either way: Mallocs counts allocations, not collections.
	errs := make([]error, clients)
	startCh := make(chan struct{})
	var wg sync.WaitGroup
	for i := range cls {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := cls[i]
			defer c.LeaveCohort()
			addr := dmsim.NilGAddr.Add(uint64(64 * (i + 1)))
			buf := make([]byte, 64)
			hs := make([]*dmsim.Completion, depth)
			<-startCh
			for j := 0; j < ops; j += depth {
				for d := range hs {
					h, err := c.PostRead(addr, buf)
					if err != nil {
						errs[i] = err
						return
					}
					hs[d] = h
				}
				for d := range hs {
					c.Poll(hs[d])
					c.Release(hs[d])
				}
			}
		}(i)
	}
	runtime.GC()
	gcWas := debug.SetGCPercent(-1)
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now() //lint:allow virtualclock host-capacity experiment measures wall time by design
	close(startCh)
	wg.Wait()
	hostSec := time.Since(start).Seconds() //lint:allow virtualclock host-capacity experiment measures wall time by design
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	debug.SetGCPercent(gcWas)
	for _, err := range errs {
		if err != nil {
			return ScaleRow{}, err
		}
	}

	totalOps := int64(clients) * int64(ops)
	row := ScaleRow{
		Scheduler:   schedulerName(mode),
		Clients:     clients,
		Lanes:       lanes,
		Depth:       depth,
		QuantumRTTs: quantumRTTs,
		Ops:         totalOps,
		HostSeconds: hostSec,
		HostMops:    float64(totalOps) / hostSec / 1e6,
		VirtualMs:   float64(f.Frontier()) / 1e6,
		RSSMB:       readRSSMB(),
		AllocsPerOp: float64(memAfter.Mallocs-memBefore.Mallocs) / float64(totalOps),
		Fingerprint: scaleFingerprint(f, cls),
	}
	return row, nil
}

func schedulerName(mode dmsim.SchedulerKind) string {
	if mode == dmsim.SchedulerEventLoop {
		return "event"
	}
	return "gate"
}

// scaleFingerprint hashes everything a run makes observable — each
// client's final clock and traffic counters in creation order, the NIC
// totals, and the fabric frontier — so two runs fingerprint equal iff
// their Result-level outputs are bit-identical.
func scaleFingerprint(f *dmsim.Fabric, cls []*dmsim.Client) string {
	h := fnv.New64a()
	w := func(v int64) {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	for _, c := range cls {
		w(c.Now())
		s := c.Stats()
		w(s.Reads)
		w(s.Writes)
		w(s.Trips)
		w(s.BytesRead)
		w(s.Posted)
	}
	n := f.TotalNICStats()
	w(n.Verbs)
	w(n.BytesIn)
	w(n.BytesOut)
	w(n.QueuedNs)
	w(n.ServedNs)
	w(f.Frontier())
	return fmt.Sprintf("%016x", h.Sum64())
}

// readRSSMB reads the process's current resident set from
// /proc/self/status (0 when unavailable, e.g. non-Linux hosts).
func readRSSMB() float64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return 0
		}
		return kb / 1024
	}
	return 0
}

// faithfulQuantumRTTs is the window width index experiments run under:
// tight enough that cohort members stay closely synchronized in virtual
// time. Head-to-head scheduler comparisons happen here.
const faithfulQuantumRTTs = 8

// capacityQuantumRTTs is the loosely-coupled window for a given cohort
// size: wide enough that a member rides out the NIC queueing delay of
// the whole cohort many times over before parking, so park/advance cost
// amortizes away and the row measures the simulator's raw verb ceiling.
func capacityQuantumRTTs(clients int) int {
	return 20 * clients
}

// RunScale sweeps the client axis. Gate points stop at GateCap; event
// points cover the whole sweep. With QuantumRTTs unset, each point runs
// the head-to-head pair at the faithful window plus an event capacity
// row (see ScaleOptions.QuantumRTTs). With Verify, each configuration
// runs twice and Reproducible records whether the fingerprints matched —
// the expected outcome is true for every event row (the loop is
// deterministic by construction) and false for multi-client gate rows
// (the condvar gate admits host-scheduling interleavings at the NIC).
func RunScale(opts ScaleOptions) ([]ScaleRow, error) {
	opts = opts.withDefaults()
	type config struct {
		mode    dmsim.SchedulerKind
		quantum int
	}
	var rows []ScaleRow
	for _, clients := range opts.ClientSweep {
		ops := opts.OpsPerClient
		if ops <= 0 {
			// At least ~2M verbs per point, and at least 300 per client so
			// one-time per-client costs (completion-pool warm-up, cold
			// structures) do not masquerade as steady-state cost.
			ops = maxInt(2_000_000/clients, 300)
		}
		var configs []config
		if opts.QuantumRTTs > 0 {
			configs = []config{
				{dmsim.SchedulerGate, opts.QuantumRTTs},
				{dmsim.SchedulerEventLoop, opts.QuantumRTTs},
			}
		} else {
			configs = []config{
				{dmsim.SchedulerGate, faithfulQuantumRTTs},
				{dmsim.SchedulerEventLoop, faithfulQuantumRTTs},
				{dmsim.SchedulerEventLoop, capacityQuantumRTTs(clients)},
			}
		}
		for _, cf := range configs {
			if cf.mode == dmsim.SchedulerGate && clients > opts.GateCap {
				continue
			}
			lanes := 1
			if cf.mode == dmsim.SchedulerEventLoop {
				lanes = opts.Lanes
			}
			row, err := scalePoint(cf.mode, clients, ops, opts.Depth, lanes, cf.quantum)
			if err != nil {
				return nil, fmt.Errorf("scale %s/%d: %w", schedulerName(cf.mode), clients, err)
			}
			if opts.Verify {
				again, err := scalePoint(cf.mode, clients, ops, opts.Depth, lanes, cf.quantum)
				if err != nil {
					return nil, fmt.Errorf("scale %s/%d verify: %w", schedulerName(cf.mode), clients, err)
				}
				repro := again.Fingerprint == row.Fingerprint
				row.Reproducible = &repro
			}
			rows = append(rows, row)
			runtime.GC()
		}
	}
	return rows, nil
}

// FormatScaleRows renders the sweep as an aligned table.
func FormatScaleRows(rows []ScaleRow) string {
	out := fmt.Sprintf("%-6s %8s %6s %6s %8s %10s %9s %10s %9s %8s %11s %6s\n",
		"sched", "clients", "lanes", "depth", "qRTTs", "ops", "host(s)", "Mops/s", "virt(ms)", "rss(MB)", "allocs/op", "repro")
	for _, r := range rows {
		repro := "-"
		if r.Reproducible != nil {
			repro = strconv.FormatBool(*r.Reproducible)
		}
		out += fmt.Sprintf("%-6s %8d %6d %6d %8d %10d %9.2f %10.2f %9.1f %8.0f %11.4f %6s\n",
			r.Scheduler, r.Clients, r.Lanes, r.Depth, r.QuantumRTTs, r.Ops,
			r.HostSeconds, r.HostMops, r.VirtualMs, r.RSSMB, r.AllocsPerOp, repro)
	}
	return out
}

// ScaleSpeedup returns the event/gate host-throughput ratio at the
// largest client count both schedulers covered (0 when no pair exists).
// Only same-quantum rows are compared: window width changes the
// park/advance amortization for both schedulers alike, so cross-quantum
// ratios would measure the window, not the scheduler.
func ScaleSpeedup(rows []ScaleRow) (int, float64) {
	best := 0
	var gate, event float64
	for _, r := range rows {
		for _, o := range rows {
			if r.Scheduler == "gate" && o.Scheduler == "event" &&
				r.Clients == o.Clients && r.QuantumRTTs == o.QuantumRTTs && r.Clients > best {
				best, gate, event = r.Clients, r.HostMops, o.HostMops
			}
		}
	}
	if best == 0 || gate == 0 {
		return 0, 0
	}
	return best, event / gate
}

// MarshalScaleJSON renders the rows as the BENCH_SCALE.json artifact.
func MarshalScaleJSON(opts ScaleOptions, rows []ScaleRow) ([]byte, error) {
	opts = opts.withDefaults()
	atClients, speedup := ScaleSpeedup(rows)
	return json.MarshalIndent(struct {
		Experiment      string     `json:"experiment"`
		Depth           int        `json:"depth"`
		Lanes           int        `json:"lanes"`
		SpeedupClients  int        `json:"speedup_clients"`
		SpeedupEventVs1 float64    `json:"speedup_event_vs_gate"`
		Rows            []ScaleRow `json:"rows"`
	}{
		Experiment:      "scale",
		Depth:           opts.Depth,
		Lanes:           opts.Lanes,
		SpeedupClients:  atClients,
		SpeedupEventVs1: speedup,
		Rows:            rows,
	}, "", "  ")
}

func init() {
	register(Experiment{ID: "scale", Title: "Host-side simulator capacity: gate vs event loop, 1k-100k clients", Run: ScaleExperiment})
}

// ScaleExperiment is the registered experiment wrapper around RunScale.
func ScaleExperiment(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# Scale sweep: simulated verbs per host second, condvar gate vs batch event loop\n")
	rows, err := RunScale(ScaleOptions{Verify: true})
	if err != nil {
		return err
	}
	fmt.Fprint(w, FormatScaleRows(rows))
	if at, sp := ScaleSpeedup(rows); at > 0 {
		fmt.Fprintf(w, "event/gate speedup at %d clients: %.1fx\n", at, sp)
	}
	return nil
}
