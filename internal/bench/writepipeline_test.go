package bench

import (
	"testing"

	"chime/internal/ycsb"
)

// TestMultiPutPipelineSpeedup pins the tentpole acceptance criterion:
// on a cold cache, batched writes at depth 8 must deliver at least 3x
// the virtual-time throughput of depth 1 on BOTH YCSB A and the
// 100%-insert LOAD mix.
func TestMultiPutPipelineSpeedup(t *testing.T) {
	sc := SmallScale
	clients := pipelineClients(sc)
	for _, mix := range []ycsb.Mix{ycsb.WorkloadA, ycsb.WorkloadLoad} {
		sys, cfg, err := buildSystem("CHIME", sc, 1, func(c *SystemConfig) {
			c.CacheBytes = 0
			c.DisableRDWC = true
		})
		if err != nil {
			t.Fatal(err)
		}
		point := func(depth int) MultiPutResult {
			r, err := RunMultiPut(sys, MultiPutConfig{
				Mix:          mix,
				Clients:      clients,
				OpsPerClient: maxInt(sc.Ops/clients, 1),
				Depth:        depth,
				ValueSize:    cfg.ValueSize,
				KeySpace:     NewKeySpaceFor(cfg.LoadKeys),
				Seed:         31,
			})
			if err != nil {
				t.Fatalf("%s depth %d: %v", mix.Name, depth, err)
			}
			return r
		}
		d1 := point(1)
		d8 := point(8)
		speedup := d8.ThroughputMops / d1.ThroughputMops
		t.Logf("cold-cache YCSB %s: depth-1 %.3f Mops, depth-8 %.3f Mops (%.2fx, cycles %d, combined %d)",
			mix.Name, d1.ThroughputMops, d8.ThroughputMops, speedup, d8.WriteCycles, d8.CombinedKeys)
		if speedup < 3 {
			t.Fatalf("%s: depth-8 speedup %.2fx < 3x", mix.Name, speedup)
		}
		if d8.MaxInflight < 2 {
			t.Fatalf("%s: depth-8 run never had >1 verb in flight (MaxInflight=%d)", mix.Name, d8.MaxInflight)
		}
		if d8.WriteCycles == 0 {
			t.Fatalf("%s: no write cycles recorded", mix.Name)
		}
	}
}

// TestRunMultiPutRejectsRDWC: the combining wrapper hides the batch
// write interface; the harness must say so rather than silently
// degrade.
func TestRunMultiPutRejectsRDWC(t *testing.T) {
	sc := SmallScale
	sc.LoadN, sc.Ops = 2000, 500
	sys, cfg, err := buildSystem("CHIME", sc, 1, nil) // RDWC enabled
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunMultiPut(sys, MultiPutConfig{
		Mix:          ycsb.WorkloadLoad,
		Clients:      2,
		OpsPerClient: 10,
		Depth:        4,
		ValueSize:    cfg.ValueSize,
		KeySpace:     NewKeySpaceFor(cfg.LoadKeys),
	})
	if err == nil {
		t.Fatal("RunMultiPut accepted a non-BatchWriter client")
	}
}

// TestRunMultiPutBothSystems drives the mixed and insert-only mixes end
// to end for both batch-writing systems at several depths.
func TestRunMultiPutBothSystems(t *testing.T) {
	sc := SmallScale
	sc.LoadN, sc.Ops = 4000, 2000
	for _, name := range []string{"CHIME", "Sherman"} {
		for _, mix := range []ycsb.Mix{ycsb.WorkloadA, ycsb.WorkloadLoad} {
			sys, cfg, err := buildSystem(name, sc, 1, func(c *SystemConfig) {
				c.DisableRDWC = true
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, depth := range []int{1, 8} {
				r, err := RunMultiPut(sys, MultiPutConfig{
					Mix:          mix,
					Clients:      4,
					OpsPerClient: sc.Ops / 4,
					Depth:        depth,
					ValueSize:    cfg.ValueSize,
					KeySpace:     NewKeySpaceFor(cfg.LoadKeys),
					Seed:         7,
				})
				if err != nil {
					t.Fatalf("%s %s depth %d: %v", name, mix.Name, depth, err)
				}
				if r.ThroughputMops <= 0 || r.Ops != int64(sc.Ops) {
					t.Fatalf("%s %s depth %d: bad result %+v", name, mix.Name, depth, r)
				}
				if r.WriteCycles == 0 {
					t.Fatalf("%s %s depth %d: no write cycles", name, mix.Name, depth)
				}
			}
		}
	}
}
