package bench

import (
	"testing"

	"chime/internal/ycsb"
)

// Two single-client runs built from the same scale and workload seed
// must produce bit-identical result rows: every timestamp is virtual,
// every random draw is threaded from the seed (the virtualclock and
// seededrand analyzers enforce both statically), so nothing in a
// deterministic run may vary between executions. This is the
// row-level replay guarantee the committed BENCH_*.json artifacts and
// the fault plane's off-means-off pin build on.
func TestSameSeedBitIdenticalRows(t *testing.T) {
	sc := tinyScale
	sc.LoadN = 3000

	measure := func() Result {
		t.Helper()
		sys, cfg, err := buildSystem("CHIME", sc, 1, func(c *SystemConfig) {
			c.LoadClients = 1 // single-threaded: fully deterministic
		})
		if err != nil {
			t.Fatal(err)
		}
		r, err := runPoint(sys, cfg, ycsb.WorkloadA, 1, 800, 7)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	a, b := measure(), measure()
	if a != b {
		t.Fatalf("same seed produced different rows:\n a: %+v\n b: %+v", a, b)
	}
}
