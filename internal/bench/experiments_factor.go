package bench

import (
	"fmt"
	"io"

	"chime/internal/core"
	"chime/internal/ycsb"
)

// Factor analysis experiments (§5.3): applying CHIME's techniques one
// by one, the sibling-based-validation metadata saving, and the
// speculative-read contribution.

func init() {
	register(Experiment{ID: "fig15", Title: "Factor analysis of CHIME techniques", Run: Fig15})
	register(Experiment{ID: "fig16", Title: "Sibling-based validation metadata saving", Run: Fig16})
	register(Experiment{ID: "fig17", Title: "Speculative read contribution", Run: Fig17})
}

// Fig15 reproduces Figure 15 (Sherman-based half): starting from
// Sherman and applying the hopscotch leaf, vacancy-bitmap piggybacking,
// leaf metadata replication and speculative reads one at a time, on the
// workloads where each technique matters.
func Fig15(w io.Writer, sc Scale) error {
	type stage struct {
		label string
		name  string
		mut   func(*SystemConfig)
	}
	stages := []stage{
		{"Sherman (baseline)", "Sherman", nil},
		{"+Hopscotch leaf", "CHIME", func(c *SystemConfig) {
			c.DisablePiggyback = true
			c.DisableReplication = true
			c.DisableSpeculation = true
		}},
		{"+Vacancy piggyback", "CHIME", func(c *SystemConfig) {
			c.DisableReplication = true
			c.DisableSpeculation = true
		}},
		{"+Meta replication", "CHIME", func(c *SystemConfig) {
			c.DisableSpeculation = true
		}},
		{"+Speculative read", "CHIME", nil},
	}
	for _, mix := range []ycsb.Mix{ycsb.WorkloadC, ycsb.WorkloadLoad, ycsb.WorkloadA} {
		fmt.Fprintf(w, "# Figure 15: factor analysis, YCSB %s\n", mix.Name)
		var rows []Result
		for _, st := range stages {
			sys, cfg, err := buildSystem(st.name, sc, 1, st.mut)
			if err != nil {
				return fmt.Errorf("%s: %w", st.label, err)
			}
			r, err := runPoint(sys, cfg, mix, sc.Clients, sc.Ops, 15)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", st.label, mix.Name, err)
			}
			r.System = st.label
			rows = append(rows, r)
		}
		fmt.Fprint(w, FormatResults(rows))
	}
	return nil
}

// Fig16 reproduces Figure 16: per-entry leaf metadata bytes with
// fence-key replication vs sibling-based validation as the key size
// grows (analytic model from §4.5, validated against the paper's
// 1.4x..8.6x endpoints).
func Fig16(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# Figure 16: leaf metadata bytes per entry (H=8, 8B values)\n")
	fmt.Fprintf(w, "%-8s %14s %14s %10s\n", "keyB", "fence-repl", "sibling-val", "saving")
	for _, ks := range []int{8, 16, 32, 64, 128, 256} {
		fence := core.MetadataBytesPerEntry(ks, 8, 8, false)
		sv := core.MetadataBytesPerEntry(ks, 8, 8, true)
		fmt.Fprintf(w, "%-8d %14.2f %14.2f %9.1fx\n", ks, fence, sv, fence/sv)
	}
	return nil
}

// Fig17 reproduces Figure 17: YCSB C throughput with and without
// speculative reads as the client count grows; the benefit appears when
// the NIC saturates, because successful speculations replace H-entry
// neighborhood reads with single-entry reads.
func Fig17(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# Figure 17: speculative read (SR) contribution, YCSB C\n")
	var rows []Result
	for _, variant := range []struct {
		label   string
		disable bool
	}{{"CHIME w/o SR", true}, {"CHIME w/ SR", false}} {
		sys, cfg, err := buildSystem("CHIME", sc, 1, func(c *SystemConfig) {
			c.DisableSpeculation = variant.disable
		})
		if err != nil {
			return err
		}
		for _, clients := range sc.ClientSweep {
			r, err := runPoint(sys, cfg, ycsb.WorkloadC, clients, sc.Ops, 17)
			if err != nil {
				return err
			}
			r.System = variant.label
			rows = append(rows, r)
		}
	}
	fmt.Fprint(w, FormatResults(rows))
	return nil
}
