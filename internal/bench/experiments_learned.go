package bench

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"

	"chime/internal/rdwc"
	"chime/internal/rolex"
	"chime/internal/ycsb"
)

// Figure 15b: the ROLEX-based half of the factor analysis. Applying the
// hopscotch-leaf technique to the learned index yields "CHIME-Learned";
// the paper's point (§5.3) is that CHIME still wins because model error
// forces the learned index to probe two leaves (two neighborhoods) per
// lookup, while the B+ tree pinpoints one.

func init() {
	register(Experiment{ID: "fig15b", Title: "CHIME vs CHIME-Learned (hopscotch leaves on ROLEX)", Run: Fig15b})
}

// newCHIMELearned builds a ROLEX index with hopscotch leaves.
func newCHIMELearned(cfg SystemConfig) (System, error) {
	opts := rolex.DefaultOptions()
	// Match CHIME's geometry so neighborhoods are comparable: span-64
	// leaves with an H=8 neighborhood.
	opts.SpanSize = 64
	opts.Epsilon = 64
	opts.HopscotchLeaves = true
	opts.Neighborhood = 8
	opts.ValueSize = cfg.ValueSize
	opts.Indirect = cfg.Indirect
	ix, err := rolex.Build(cfg.Fabric, opts, cfg.LoadKeys, nil)
	if err != nil {
		return nil, err
	}
	sys := &rolexSystem{ix: ix, cn: ix.NewComputeNode(), comb: rdwc.NewCombiner()}
	sys.newC = withRDWC(cfg, sys.comb, func() Client { return rolexClient{cl: sys.cn.NewClient()} })
	return &learnedSystem{rolexSystem: sys}, nil
}

// learnedSystem renames the wrapped ROLEX for reporting.
type learnedSystem struct{ *rolexSystem }

func (s *learnedSystem) Name() string { return "CHIME-Learned" }

// Fig15b compares CHIME against CHIME-Learned and plain ROLEX under
// YCSB C and A.
func Fig15b(w io.Writer, sc Scale) error {
	builders := []struct {
		name    string
		factory Factory
	}{
		{"CHIME", NewCHIME},
		{"CHIME-Learned", newCHIMELearned},
		{"ROLEX", NewROLEX},
	}
	for _, mix := range []ycsb.Mix{ycsb.WorkloadC, ycsb.WorkloadA} {
		fmt.Fprintf(w, "# Figure 15b: CHIME vs CHIME-Learned, YCSB %s\n", mix.Name)
		var rows []Result
		for _, b := range builders {
			runtime.GC()
			debug.FreeOSMemory()
			f := DefaultFabric(1, sc.MNSize)
			cfg := baseConfig(f, sc, SortedLoadKeys(sc.LoadN))
			sys, err := b.factory(cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", b.name, err)
			}
			r, err := runPoint(sys, cfg, mix, sc.Clients, sc.Ops, 155)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", b.name, mix.Name, err)
			}
			r.System = b.name
			rows = append(rows, r)
		}
		fmt.Fprint(w, FormatResults(rows))
	}
	return nil
}
