package bench

import "testing"

// TestScaleSmoke runs a miniature sweep through the full RunScale path —
// both schedulers, verification double-runs, table and JSON rendering —
// keeping the experiment wired end to end without burning bench time on
// real client counts. QuantumRTTs is pinned so the sweep is one
// head-to-head configuration per point (2 rows each).
func TestScaleSmoke(t *testing.T) {
	opts := ScaleOptions{
		ClientSweep:  []int{8, 64},
		OpsPerClient: 64,
		Depth:        4,
		QuantumRTTs:  8,
		Verify:       true,
	}
	rows, err := RunScale(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 (2 schedulers x 2 counts)", len(rows))
	}
	for _, r := range rows {
		if r.Ops != int64(r.Clients)*64 {
			t.Errorf("%s/%d: ops = %d, want %d", r.Scheduler, r.Clients, r.Ops, r.Clients*64)
		}
		if r.QuantumRTTs != 8 {
			t.Errorf("%s/%d: quantum = %d, want pinned 8", r.Scheduler, r.Clients, r.QuantumRTTs)
		}
		if r.HostSeconds <= 0 || r.HostMops <= 0 {
			t.Errorf("%s/%d: non-positive host timing %v / %v", r.Scheduler, r.Clients, r.HostSeconds, r.HostMops)
		}
		if r.VirtualMs <= 0 {
			t.Errorf("%s/%d: virtual time did not advance", r.Scheduler, r.Clients)
		}
		if r.Fingerprint == "" {
			t.Errorf("%s/%d: empty fingerprint", r.Scheduler, r.Clients)
		}
		if r.Reproducible == nil {
			t.Errorf("%s/%d: Verify set but Reproducible missing", r.Scheduler, r.Clients)
		} else if r.Scheduler == "event" && !*r.Reproducible {
			// The event loop is deterministic by construction; a gate row
			// may legitimately reproduce or not, so only event is pinned.
			t.Errorf("event/%d: fingerprint did not reproduce", r.Clients)
		}
	}
	if s := FormatScaleRows(rows); s == "" {
		t.Error("empty table")
	}
	if _, err := MarshalScaleJSON(opts, rows); err != nil {
		t.Errorf("MarshalScaleJSON: %v", err)
	}
}

// TestScaleAutoQuanta pins the auto (QuantumRTTs unset) shape: each
// point yields the faithful head-to-head pair plus an event capacity
// row whose window scales with the cohort.
func TestScaleAutoQuanta(t *testing.T) {
	rows, err := RunScale(ScaleOptions{
		ClientSweep:  []int{8},
		OpsPerClient: 16,
		Depth:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3 (gate+event faithful, event capacity)", len(rows))
	}
	wants := []struct {
		sched   string
		quantum int
	}{
		{"gate", faithfulQuantumRTTs},
		{"event", faithfulQuantumRTTs},
		{"event", capacityQuantumRTTs(8)},
	}
	for i, w := range wants {
		if rows[i].Scheduler != w.sched || rows[i].QuantumRTTs != w.quantum {
			t.Errorf("row %d = %s/q%d, want %s/q%d",
				i, rows[i].Scheduler, rows[i].QuantumRTTs, w.sched, w.quantum)
		}
	}
}

// TestScaleGateCap pins that gate points above GateCap are skipped: the
// condvar gate's O(members) windows make very large cohorts a finding to
// report, not a default to wait on. ScaleSpeedup must pair the largest
// same-quantum gate/event rows.
func TestScaleGateCap(t *testing.T) {
	rows, err := RunScale(ScaleOptions{
		ClientSweep:  []int{8, 32},
		OpsPerClient: 16,
		Depth:        2,
		QuantumRTTs:  8,
		GateCap:      8,
	})
	if err != nil {
		t.Fatal(err)
	}
	var gates, events int
	for _, r := range rows {
		switch r.Scheduler {
		case "gate":
			gates++
			if r.Clients > 8 {
				t.Errorf("gate row at %d clients exceeds GateCap 8", r.Clients)
			}
		case "event":
			events++
		}
	}
	if gates != 1 || events != 2 {
		t.Fatalf("got %d gate / %d event rows, want 1 / 2", gates, events)
	}
	if at, sp := ScaleSpeedup(rows); at != 8 || sp <= 0 {
		t.Errorf("ScaleSpeedup = (%d, %v), want pair at 8 clients with positive ratio", at, sp)
	}
}
