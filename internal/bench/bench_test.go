package bench

import (
	"bytes"
	"strings"
	"testing"

	"chime/internal/ycsb"
)

// tinyScale keeps unit tests fast; shape assertions use slightly larger
// runs below where needed.
var tinyScale = Scale{
	LoadN:       4000,
	Ops:         1500,
	ClientSweep: []int{4},
	Clients:     4,
	MNSize:      512 << 20,
	Trials:      3,
}

func TestRunAllSystemsYCSBC(t *testing.T) {
	for _, name := range HeadToHeadSystems {
		t.Run(name, func(t *testing.T) {
			sys, cfg, err := buildSystem(name, tinyScale, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			r, err := runPoint(sys, cfg, ycsb.WorkloadC, 4, 1200, 1)
			if err != nil {
				t.Fatal(err)
			}
			if r.ThroughputMops <= 0 || r.P50Us <= 0 {
				t.Fatalf("degenerate result: %+v", r)
			}
			// Delegated reads (RDWC) pay no trips, so the average can dip
			// slightly below 1 on skewed workloads.
			if r.TripsPerOp < 0.5 {
				t.Fatalf("implausibly few trips per search: %+v", r)
			}
		})
	}
}

func TestRunMixedWorkloads(t *testing.T) {
	sys, cfg, err := buildSystem("CHIME", tinyScale, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, mix := range []ycsb.Mix{ycsb.WorkloadA, ycsb.WorkloadD, ycsb.WorkloadE, ycsb.WorkloadLoad} {
		if _, err := runPoint(sys, cfg, mix, 4, 800, 2); err != nil {
			t.Fatalf("mix %s: %v", mix.Name, err)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	sys, _, err := buildSystem("CHIME", tinyScale, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(sys, RunConfig{Clients: 0}); err == nil {
		t.Fatal("zero clients must fail")
	}
	if _, err := Run(sys, RunConfig{Clients: 1, OpsPerClient: 1}); err == nil {
		t.Fatal("missing keyspace must fail")
	}
}

// TestShapeCHIMEBeatsShermanReadOnly is the headline claim at small
// scale: with equal cache budgets on a bandwidth-limited fabric, CHIME's
// neighborhood reads beat Sherman's whole-leaf reads on YCSB C.
func TestShapeCHIMEBeatsShermanReadOnly(t *testing.T) {
	sc := tinyScale
	sc.LoadN = 8000
	sc.Ops = 4000
	results := map[string]Result{}
	for _, name := range []string{"CHIME", "Sherman"} {
		sys, cfg, err := buildSystem(name, sc, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		r, err := runPoint(sys, cfg, ycsb.WorkloadC, 16, sc.Ops, 3)
		if err != nil {
			t.Fatal(err)
		}
		results[name] = r
	}
	if results["CHIME"].ReadBytes >= results["Sherman"].ReadBytes {
		t.Fatalf("CHIME read bytes/op (%0.f) must undercut Sherman (%0.f)",
			results["CHIME"].ReadBytes, results["Sherman"].ReadBytes)
	}
	if results["CHIME"].ThroughputMops <= results["Sherman"].ThroughputMops {
		t.Fatalf("CHIME %.3f Mops must beat Sherman %.3f Mops on YCSB C",
			results["CHIME"].ThroughputMops, results["Sherman"].ThroughputMops)
	}
}

// TestShapeSMARTCacheHungry: SMART's cache grows with the key count far
// beyond CHIME's.
func TestShapeSMARTCacheHungry(t *testing.T) {
	sc := tinyScale
	cache := map[string]int64{}
	for _, name := range []string{"CHIME", "SMART"} {
		sys, cfg, err := buildSystem(name, sc, 1, func(c *SystemConfig) {
			c.CacheBytes = 1 << 30
			c.HotspotBytes = 0
		})
		if err != nil {
			t.Fatal(err)
		}
		cl := sys.NewClient()
		for _, k := range cfg.LoadKeys {
			if _, err := cl.Search(k); err != nil {
				t.Fatal(err)
			}
		}
		cache[name] = sys.CacheBytes()
	}
	if cache["SMART"] < 4*cache["CHIME"] {
		t.Fatalf("SMART cache (%d) should dwarf CHIME's (%d)", cache["SMART"], cache["CHIME"])
	}
}

func TestExperimentRegistry(t *testing.T) {
	want := []string{
		"main",
		"fig3a", "fig3b", "fig3c", "fig3d", "fig4a", "fig4b", "fig4c",
		"tab1", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"fig18a", "fig18b", "fig18c", "fig18d", "fig18e", "fig18f",
		"fig19a", "fig19b", "fig19c",
		"scale",
	}
	for _, id := range want {
		if _, err := FindExperiment(id); err != nil {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if _, err := FindExperiment("nope"); err == nil {
		t.Error("unknown experiment must error")
	}
}

// TestQuickExperimentsRun smoke-tests the cheap experiments end to end.
func TestQuickExperimentsRun(t *testing.T) {
	for _, id := range []string{"fig3a", "fig3d", "fig16", "fig19a", "fig19b", "fig4c"} {
		exp, err := FindExperiment(id)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := exp.Run(&buf, tinyScale); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", id)
		}
	}
}

// TestTable1Shape runs the round-trip experiment and sanity-checks the
// best-case numbers against the paper's Table 1.
func TestTable1Shape(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf, tinyScale); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "search") || !strings.Contains(out, "insert") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	t.Log("\n" + out)
}

func TestFormatResults(t *testing.T) {
	s := FormatResults([]Result{{System: "X", Mix: "C", Clients: 4, ThroughputMops: 1.5}})
	if !strings.Contains(s, "X") || !strings.Contains(s, "1.500") {
		t.Fatalf("format: %q", s)
	}
}

func TestSortedLoadKeys(t *testing.T) {
	keys := SortedLoadKeys(1000)
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatal("not sorted/unique")
		}
	}
}
