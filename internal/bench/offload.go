package bench

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"time"

	"chime/internal/dmsim"
	"chime/internal/offroute"
	"chime/internal/ycsb"
)

// Offload experiment: the Table-1-style accounting for the MN-side
// offload verbs and the hybrid one-sided/RPC router. Four sections, all
// on the paper's four systems:
//
//	trips    — round trips per point op, cold cache, one client: the
//	           offloaded path collapses descend+fetch+probe to ~1.
//	deep     — head-to-head on a deep/cold-cache uniform read workload
//	           at a client count the bounded MN CPU can absorb: static
//	           offload beats one-sided.
//	saturate — the same workload at client counts past the MN CPU's
//	           capacity: one-sided keeps scaling, offload flatlines at
//	           the MN compute ceiling and loses.
//	mixed    — a cached zipfian read-heavy mix where the two static
//	           policies split; the adaptive router should match or beat
//	           the better static one.
//
// Every point is run twice from a fresh build and its fingerprint —
// a hash of the full Result row plus the fabric's NIC, MN-CPU and
// frontier totals — must be bit-identical across the double run, per
// scheduler (the gate and the event loop are each deterministic but not
// bit-identical to each other; see internal/dmsim).

// offloadDeepMix is the deep/cold section's workload: uniform point
// reads, so the CN cache can't learn a hot set and every one-sided op
// pays the full descent.
var offloadDeepMix = ycsb.Mix{Name: "Cu", ReadPct: 1.0, Dist: ycsb.DistUniform}

// offloadDeepClients is the "deep" section's client count: low enough
// that the default 2-core MN CPU stays under its service ceiling.
const offloadDeepClients = 4

// OffloadOptions parameterizes RunOffload (the chime-bench -offload,
// -mn-cpus and -mn-service-ns flags land here).
type OffloadOptions struct {
	// Modes restricts the routing modes compared (default off, on,
	// adaptive).
	Modes []offroute.Mode

	// MNCPUs / MNServiceNs size the MN compute model; zeros keep the
	// dmsim defaults (2 cores, 600 ns dispatch).
	MNCPUs      int
	MNServiceNs int64

	// Schedulers lists the cohort schedulers to run the whole sweep
	// under (default: gate and event loop).
	Schedulers []dmsim.SchedulerKind
}

// OffloadRow is one measured point, JSON-serializable for the committed
// BENCH_OFFLOAD.json artifact.
type OffloadRow struct {
	Section        string  `json:"section"`
	Scheduler      string  `json:"scheduler"`
	System         string  `json:"system"`
	Mode           string  `json:"mode"`
	Mix            string  `json:"mix"`
	Clients        int     `json:"clients"`
	Ops            int64   `json:"ops"`
	ThroughputMops float64 `json:"throughput_mops"`
	P50Us          float64 `json:"p50_us"`
	P99Us          float64 `json:"p99_us"`
	TripsPerOp     float64 `json:"trips_per_op"`
	OffloadsPerOp  float64 `json:"offloads_per_op"`
	FallbacksPerOp float64 `json:"mn_fallbacks_per_op"`
	MNUtilization  float64 `json:"mn_utilization"`
	Fingerprint    string  `json:"fingerprint"`
	Reproducible   bool    `json:"reproducible"`
}

// offloadFingerprint hashes everything one point makes observable: the
// full Result row plus the fabric's cumulative NIC, MN-CPU and frontier
// state. Two runs fingerprint equal iff they were bit-identical.
func offloadFingerprint(r Result, f *dmsim.Fabric) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", r)
	fmt.Fprintf(h, "%+v%+v%d", f.TotalNICStats(), f.TotalMNCPUStats(), f.Frontier())
	return fmt.Sprintf("%016x", h.Sum64())
}

// offloadPoint stands up one fresh system and measures one point.
// ColdCache shrinks the CN cache to a sliver so every one-sided op pays
// the full descent (the regime offload targets); it also drops RDWC so
// the trips accounting is the raw protocol's.
func offloadPoint(name string, sc Scale, opts OffloadOptions, sched dmsim.SchedulerKind,
	mode offroute.Mode, mix ycsb.Mix, coldCache bool, clients, ops int) (Result, string, error) {
	var fab *dmsim.Fabric
	sys, cfg, err := buildSystem(name, sc, 1, func(c *SystemConfig) {
		fcfg := dmsim.DefaultConfig()
		fcfg.MNs = 1
		fcfg.MNSize = sc.MNSize
		fcfg.ChunkBytes = 1 << 20
		fcfg.MNCPUs = opts.MNCPUs
		fcfg.MNServiceTime = time.Duration(opts.MNServiceNs)
		fcfg.Scheduler = sched
		fab = dmsim.MustNewFabric(fcfg)
		c.Fabric = fab
		c.Offload = mode
		// Single-threaded bulk load: parallel loaders race host-side for
		// virtual-time ties, which would break the double-run fingerprint
		// (see TestSameSeedBitIdenticalRows).
		c.LoadClients = 1
		if coldCache {
			// No CN cache at all: every one-sided op pays the full descent
			// (the regime offload targets), and — as important for the
			// fingerprint pin — there is no shared LRU whose eviction order
			// would depend on how the host interleaves concurrent readers.
			c.CacheBytes = 0
			c.HotspotBytes = 0
			c.DisableRDWC = true
		}
	})
	if err != nil {
		return Result{}, "", err
	}
	r, err := runPoint(sys, cfg, mix, clients, ops, 23)
	if err != nil {
		return Result{}, "", err
	}
	return r, offloadFingerprint(r, fab), nil
}

// RunOffload runs the four sections for every system, mode and
// scheduler, double-running each point for the reproducibility pin.
func RunOffload(sc Scale, opts OffloadOptions) ([]OffloadRow, error) {
	if len(opts.Modes) == 0 {
		opts.Modes = []offroute.Mode{offroute.ModeOff, offroute.ModeAlways, offroute.ModeAdaptive}
	}
	if len(opts.Schedulers) == 0 {
		opts.Schedulers = []dmsim.SchedulerKind{dmsim.SchedulerGate, dmsim.SchedulerEventLoop}
	}
	type point struct {
		section   string
		mix       ycsb.Mix
		coldCache bool
		clients   int
		ops       int
		modes     []offroute.Mode
	}
	// The saturation sweep's high end: past the default MN CPU's
	// closed-loop capacity for point ops.
	satClients := sc.Clients * 4
	if satClients < 64 {
		satClients = 64
	}
	// Multi-client sections stay read-only: concurrent reads commute, so
	// the double-run fingerprints are bit-identical, while contended
	// write outcomes within a cohort window depend on host scheduling
	// (which client's CAS lands first at equal virtual times). The
	// write-bearing mixed section therefore runs a single client —
	// routing is per-client anyway, so the adaptive-vs-static comparison
	// is unaffected.
	points := []point{
		{"trips", offloadDeepMix, true, 1, sc.Ops / 4, staticModes(opts.Modes)},
		{"deep", offloadDeepMix, true, offloadDeepClients, sc.Ops, opts.Modes},
		{"saturate", offloadDeepMix, true, satClients, sc.Ops, staticModes(opts.Modes)},
		{"mixed", ycsb.WorkloadB, false, 1, sc.Ops / 2, opts.Modes},
	}
	var rows []OffloadRow
	for _, sched := range opts.Schedulers {
		for _, name := range HeadToHeadSystems {
			for _, pt := range points {
				for _, mode := range pt.modes {
					r, fp, err := offloadPoint(name, sc, opts, sched, mode, pt.mix, pt.coldCache, pt.clients, pt.ops)
					if err != nil {
						return nil, fmt.Errorf("offload %s/%s/%s/%s: %w",
							schedulerName(sched), name, pt.section, mode, err)
					}
					_, fp2, err := offloadPoint(name, sc, opts, sched, mode, pt.mix, pt.coldCache, pt.clients, pt.ops)
					if err != nil {
						return nil, fmt.Errorf("offload %s/%s/%s/%s rerun: %w",
							schedulerName(sched), name, pt.section, mode, err)
					}
					rows = append(rows, OffloadRow{
						Section:        pt.section,
						Scheduler:      schedulerName(sched),
						System:         name,
						Mode:           mode.String(),
						Mix:            pt.mix.Name,
						Clients:        r.Clients,
						Ops:            r.Ops,
						ThroughputMops: r.ThroughputMops,
						P50Us:          r.P50Us,
						P99Us:          r.P99Us,
						TripsPerOp:     r.TripsPerOp,
						OffloadsPerOp:  r.OffloadsPerOp,
						FallbacksPerOp: r.MNFallbacksPerOp,
						MNUtilization:  r.MNUtilization,
						Fingerprint:    fp,
						Reproducible:   fp == fp2,
					})
				}
			}
		}
	}
	return rows, nil
}

// staticModes filters the adaptive router out of the sections whose
// story is the head-to-head between the two static policies.
func staticModes(modes []offroute.Mode) []offroute.Mode {
	var out []offroute.Mode
	for _, m := range modes {
		if m != offroute.ModeAdaptive {
			out = append(out, m)
		}
	}
	return out
}

// FormatOffloadRows renders the sweep as an aligned table.
func FormatOffloadRows(rows []OffloadRow) string {
	out := fmt.Sprintf("%-9s %-6s %-8s %-9s %-4s %8s %10s %9s %9s %9s %8s %8s %6s %6s\n",
		"section", "sched", "system", "mode", "mix", "clients", "Mops", "p50(us)", "p99(us)",
		"trips/op", "offl/op", "fallb/op", "mncpu%", "repro")
	for _, r := range rows {
		out += fmt.Sprintf("%-9s %-6s %-8s %-9s %-4s %8d %10.3f %9.1f %9.1f %9.2f %8.2f %8.4f %6.1f %6t\n",
			r.Section, r.Scheduler, r.System, r.Mode, r.Mix, r.Clients, r.ThroughputMops,
			r.P50Us, r.P99Us, r.TripsPerOp, r.OffloadsPerOp, r.FallbacksPerOp,
			r.MNUtilization*100, r.Reproducible)
	}
	return out
}

// MarshalOffloadJSON renders the rows as the BENCH_OFFLOAD.json
// artifact format.
func MarshalOffloadJSON(sc Scale, opts OffloadOptions, rows []OffloadRow) ([]byte, error) {
	return json.MarshalIndent(struct {
		Experiment  string       `json:"experiment"`
		LoadN       int          `json:"load_n"`
		Ops         int          `json:"ops"`
		MNCPUs      int          `json:"mn_cpus"`       // 0 = model default
		MNServiceNs int64        `json:"mn_service_ns"` // 0 = model default
		Rows        []OffloadRow `json:"rows"`
	}{
		Experiment:  "offload",
		LoadN:       sc.LoadN,
		Ops:         sc.Ops,
		MNCPUs:      opts.MNCPUs,
		MNServiceNs: opts.MNServiceNs,
		Rows:        rows,
	}, "", "  ")
}

func init() {
	register(Experiment{ID: "offload", Title: "MN-side offload verbs vs one-sided traversal, adaptive router head-to-head", Run: Offload})
}

// Offload is the registered experiment wrapper around RunOffload.
func Offload(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# Offload: trips/op accounting, deep/cold vs MN-CPU-saturated head-to-head, adaptive router\n")
	rows, err := RunOffload(sc, OffloadOptions{})
	if err != nil {
		return err
	}
	fmt.Fprint(w, FormatOffloadRows(rows))
	return nil
}
