package ycsb

import (
	"fmt"
	"math/rand"
	"sync/atomic"
)

// OpKind is the type of one generated operation.
type OpKind uint8

const (
	OpRead OpKind = iota
	OpUpdate
	OpInsert
	OpScan
	OpReadModifyWrite
)

// String names the operation kind.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "READ"
	case OpUpdate:
		return "UPDATE"
	case OpInsert:
		return "INSERT"
	case OpScan:
		return "SCAN"
	case OpReadModifyWrite:
		return "RMW"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one generated request.
type Op struct {
	Kind    OpKind
	Key     uint64
	ScanLen int // number of items for OpScan
}

// Distribution selects how request keys are drawn.
type Distribution uint8

const (
	// DistZipfian draws keys with YCSB's default Zipfian(0.99) skew.
	DistZipfian Distribution = iota
	// DistUniform draws keys uniformly.
	DistUniform
	// DistLatest skews toward the most recently inserted keys
	// (YCSB workload D).
	DistLatest
)

// Mix is a workload definition: operation proportions plus the request
// distribution. Proportions must sum to 1.
type Mix struct {
	Name       string
	ReadPct    float64
	UpdatePct  float64
	InsertPct  float64
	ScanPct    float64
	RMWPct     float64 // read-modify-write (YCSB F)
	Dist       Distribution
	Theta      float64 // Zipfian skew; 0 means the YCSB default 0.99
	MaxScanLen int     // upper bound for OpScan lengths (YCSB E: 100)
}

// The six workloads the CHIME evaluation uses (§5.1).
var (
	WorkloadA    = Mix{Name: "A", ReadPct: 0.5, UpdatePct: 0.5, Dist: DistZipfian}
	WorkloadB    = Mix{Name: "B", ReadPct: 0.95, UpdatePct: 0.05, Dist: DistZipfian}
	WorkloadC    = Mix{Name: "C", ReadPct: 1.0, Dist: DistZipfian}
	WorkloadD    = Mix{Name: "D", ReadPct: 0.95, InsertPct: 0.05, Dist: DistLatest}
	WorkloadE    = Mix{Name: "E", ScanPct: 0.95, InsertPct: 0.05, Dist: DistZipfian, MaxScanLen: 100}
	WorkloadF    = Mix{Name: "F", ReadPct: 0.5, RMWPct: 0.5, Dist: DistZipfian}
	WorkloadLoad = Mix{Name: "LOAD", InsertPct: 1.0, Dist: DistUniform}
)

// MixByName resolves a workload by its YCSB letter.
func MixByName(name string) (Mix, error) {
	switch name {
	case "A", "a":
		return WorkloadA, nil
	case "B", "b":
		return WorkloadB, nil
	case "C", "c":
		return WorkloadC, nil
	case "D", "d":
		return WorkloadD, nil
	case "E", "e":
		return WorkloadE, nil
	case "F", "f":
		return WorkloadF, nil
	case "LOAD", "load":
		return WorkloadLoad, nil
	}
	return Mix{}, fmt.Errorf("ycsb: unknown workload %q", name)
}

// Validate reports whether the mix's proportions sum to 1.
func (m Mix) Validate() error {
	sum := m.ReadPct + m.UpdatePct + m.InsertPct + m.ScanPct + m.RMWPct
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("ycsb: workload %q proportions sum to %g, want 1", m.Name, sum)
	}
	if m.ScanPct > 0 && m.MaxScanLen <= 0 {
		return fmt.Errorf("ycsb: workload %q has scans but MaxScanLen %d", m.Name, m.MaxScanLen)
	}
	return nil
}

// KeySpace tracks how many logical items exist. It is shared by all
// generators of a run so that inserts from one client become visible to
// the request distributions of every client, as in YCSB.
type KeySpace struct {
	count atomic.Uint64
}

// NewKeySpace returns a keyspace pre-loaded with n items (logical IDs
// [0, n)).
func NewKeySpace(n uint64) *KeySpace {
	ks := &KeySpace{}
	ks.count.Store(n)
	return ks
}

// Count returns the current number of logical items.
func (ks *KeySpace) Count() uint64 { return ks.count.Load() }

// Claim reserves the next logical ID for an insert.
func (ks *KeySpace) Claim() uint64 { return ks.count.Add(1) - 1 }

// KeyOf maps a logical item ID to its 8-byte key.
func KeyOf(id uint64) uint64 { return Mix64(id) }

// LoadKeys returns the keys of the first n logical items, the set a run
// populates before issuing requests.
func LoadKeys(n uint64) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = KeyOf(uint64(i))
	}
	return keys
}

// Generator produces the operation stream for one client. Not safe for
// concurrent use; create one per client with a distinct seed.
type Generator struct {
	mix Mix
	ks  *KeySpace
	rng *rand.Rand
	zip *Zipfian
}

// NewGenerator builds a per-client generator over the shared keyspace.
func NewGenerator(mix Mix, ks *KeySpace, seed int64) (*Generator, error) {
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	theta := mix.Theta
	if theta == 0 {
		theta = 0.99
	}
	g := &Generator{
		mix: mix,
		ks:  ks,
		rng: rand.New(rand.NewSource(seed)),
	}
	if mix.Dist == DistZipfian || mix.Dist == DistLatest {
		g.zip = NewZipfian(ks.Count(), theta)
	}
	return g, nil
}

// MustNewGenerator panics on an invalid mix; for literals in tests and
// examples.
func MustNewGenerator(mix Mix, ks *KeySpace, seed int64) *Generator {
	g, err := NewGenerator(mix, ks, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// chooseKey draws a request key from the live keyspace.
func (g *Generator) chooseKey() uint64 {
	n := g.ks.Count()
	if n == 0 {
		return KeyOf(0)
	}
	var id uint64
	switch g.mix.Dist {
	case DistUniform:
		id = g.rng.Uint64() % n
	case DistZipfian:
		id = g.zip.NextN(n, g.rng.Float64())
	case DistLatest:
		// Most recent item is the most popular.
		rank := g.zip.NextN(n, g.rng.Float64())
		id = n - 1 - rank
	}
	return KeyOf(id)
}

// Next generates one operation.
func (g *Generator) Next() Op {
	u := g.rng.Float64()
	m := g.mix
	switch {
	case u < m.ReadPct:
		return Op{Kind: OpRead, Key: g.chooseKey()}
	case u < m.ReadPct+m.UpdatePct:
		return Op{Kind: OpUpdate, Key: g.chooseKey()}
	case u < m.ReadPct+m.UpdatePct+m.InsertPct:
		return Op{Kind: OpInsert, Key: KeyOf(g.ks.Claim())}
	case u < m.ReadPct+m.UpdatePct+m.InsertPct+m.RMWPct:
		return Op{Kind: OpReadModifyWrite, Key: g.chooseKey()}
	default:
		return Op{
			Kind:    OpScan,
			Key:     g.chooseKey(),
			ScanLen: 1 + g.rng.Intn(m.MaxScanLen),
		}
	}
}

// FillValue deterministically derives a value payload for a key, sized
// valueSize bytes; used by load phases and update operations so that
// verification can recompute the expected value.
func FillValue(key uint64, valueSize int, version uint32) []byte {
	v := make([]byte, valueSize)
	seed := key ^ uint64(version)*0x9E3779B97F4A7C15
	for i := range v {
		seed = seed*6364136223846793005 + 1442695040888963407
		v[i] = byte(seed >> 56)
	}
	return v
}
