package ycsb

import "testing"

// The seededrand analyzer (cmd/chimelint) forbids the global math/rand
// source precisely so this holds: a Generator is a pure function of
// (mix, keyspace state, seed). Two generators built from the same seed
// over identically-seeded keyspaces must emit bit-identical operation
// streams — the replayability the fault plane's chaos verdicts and
// every committed bench artifact depend on.
func TestSameSeedSameWorkload(t *testing.T) {
	for _, mix := range []Mix{WorkloadA, WorkloadC, WorkloadE} {
		const n, ops, seed = 5000, 20000, 42

		gen := func() []Op {
			ks := NewKeySpace(n)
			g := MustNewGenerator(mix, ks, seed)
			out := make([]Op, ops)
			for i := range out {
				out[i] = g.Next()
			}
			return out
		}

		a, b := gen(), gen()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("mix %v: op %d diverged under the same seed: %+v vs %+v", mix, i, a[i], b[i])
			}
		}
	}
}

// Distinct seeds must actually decorrelate the streams — the per-client
// seeds the bench threads are doing real work.
func TestDistinctSeedsDiverge(t *testing.T) {
	const n, ops = 5000, 1000
	ksA, ksB := NewKeySpace(n), NewKeySpace(n)
	ga := MustNewGenerator(WorkloadA, ksA, 1)
	gb := MustNewGenerator(WorkloadA, ksB, 2)
	same := 0
	for i := 0; i < ops; i++ {
		if ga.Next() == gb.Next() {
			same++
		}
	}
	if same == ops {
		t.Fatal("seeds 1 and 2 produced identical streams")
	}
}
