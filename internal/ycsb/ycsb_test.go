package ycsb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZipfianInRange(t *testing.T) {
	prop := func(seed int64, nRaw uint16) bool {
		n := uint64(nRaw)%10000 + 1
		z := NewZipfian(n, 0.99)
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			if v := z.Next(r.Float64()); v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfianSkew(t *testing.T) {
	const n = 10000
	z := NewZipfian(n, 0.99)
	r := rand.New(rand.NewSource(1))
	counts := make([]int, n)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Next(r.Float64())]++
	}
	// Rank 0 should dominate: YCSB zipfian(0.99) over 10k items gives the
	// top item roughly 10% of the mass.
	if counts[0] < draws/20 {
		t.Fatalf("rank-0 frequency %d of %d: distribution not skewed", counts[0], draws)
	}
	// And the head must dominate the tail.
	var head, tail int
	for i := 0; i < 100; i++ {
		head += counts[i]
	}
	for i := n - 100; i < n; i++ {
		tail += counts[i]
	}
	if head < 10*tail {
		t.Fatalf("head %d vs tail %d: not zipfian", head, tail)
	}
}

func TestZipfianLowSkewIsFlatter(t *testing.T) {
	const n = 1000
	const draws = 100000
	freqTop := func(theta float64) int {
		z := NewZipfian(n, theta)
		r := rand.New(rand.NewSource(7))
		top := 0
		for i := 0; i < draws; i++ {
			if z.Next(r.Float64()) == 0 {
				top++
			}
		}
		return top
	}
	if low, high := freqTop(0.5), freqTop(0.99); low >= high {
		t.Fatalf("theta=0.5 top freq %d >= theta=0.99 top freq %d", low, high)
	}
}

func TestZipfianGrow(t *testing.T) {
	z := NewZipfian(100, 0.99)
	r := rand.New(rand.NewSource(2))
	seen := false
	for i := 0; i < 10000; i++ {
		v := z.NextN(1000, r.Float64())
		if v >= 1000 {
			t.Fatalf("draw %d out of grown range", v)
		}
		if v >= 100 {
			seen = true
		}
	}
	if !seen {
		t.Fatal("grown range never sampled")
	}
	if z.N() != 1000 {
		t.Fatalf("N() = %d after grow", z.N())
	}
	// Growing must be monotone: NextN with a smaller n must not shrink.
	z.NextN(500, 0.5)
	if z.N() != 1000 {
		t.Fatal("grow must never shrink")
	}
}

func TestMix64Bijective(t *testing.T) {
	seen := make(map[uint64]bool, 100000)
	for i := uint64(0); i < 100000; i++ {
		k := Mix64(i)
		if seen[k] {
			t.Fatalf("collision at id %d", i)
		}
		seen[k] = true
	}
}

func TestMixValidate(t *testing.T) {
	for _, m := range []Mix{WorkloadA, WorkloadB, WorkloadC, WorkloadD, WorkloadE, WorkloadF, WorkloadLoad} {
		if err := m.Validate(); err != nil {
			t.Errorf("workload %s: %v", m.Name, err)
		}
	}
	bad := Mix{Name: "bad", ReadPct: 0.5}
	if err := bad.Validate(); err == nil {
		t.Error("expected proportion error")
	}
	badScan := Mix{Name: "badscan", ScanPct: 1.0}
	if err := badScan.Validate(); err == nil {
		t.Error("expected scan-length error")
	}
}

func TestMixByName(t *testing.T) {
	for _, name := range []string{"A", "B", "C", "D", "E", "F", "LOAD", "a", "f", "load"} {
		if _, err := MixByName(name); err != nil {
			t.Errorf("MixByName(%q): %v", name, err)
		}
	}
	if _, err := MixByName("Z"); err == nil {
		t.Error("expected unknown-workload error")
	}
}

func TestGeneratorProportions(t *testing.T) {
	ks := NewKeySpace(10000)
	g := MustNewGenerator(WorkloadB, ks, 42)
	var reads, updates int
	const draws = 50000
	for i := 0; i < draws; i++ {
		switch g.Next().Kind {
		case OpRead:
			reads++
		case OpUpdate:
			updates++
		default:
			t.Fatal("workload B generated a non-read/update op")
		}
	}
	gotRead := float64(reads) / draws
	if gotRead < 0.94 || gotRead > 0.96 {
		t.Fatalf("read fraction %.3f, want ~0.95", gotRead)
	}
}

func TestGeneratorInsertGrowsKeyspace(t *testing.T) {
	ks := NewKeySpace(100)
	g := MustNewGenerator(WorkloadLoad, ks, 1)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		op := g.Next()
		if op.Kind != OpInsert {
			t.Fatal("LOAD must be all inserts")
		}
		if seen[op.Key] {
			t.Fatalf("duplicate insert key %#x", op.Key)
		}
		seen[op.Key] = true
	}
	if ks.Count() != 1100 {
		t.Fatalf("keyspace = %d, want 1100", ks.Count())
	}
}

func TestGeneratorLatestSkewsRecent(t *testing.T) {
	ks := NewKeySpace(100000)
	g := MustNewGenerator(WorkloadD, ks, 3)
	recent := map[uint64]bool{}
	for id := uint64(99000); id < 100000; id++ {
		recent[KeyOf(id)] = true
	}
	hits := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		op := g.Next()
		if op.Kind == OpRead && recent[op.Key] {
			hits++
		}
	}
	// The latest 1% of items should draw far more than 1% of requests.
	if hits < draws/10 {
		t.Fatalf("latest-1%% drew %d/%d reads: not 'latest' skewed", hits, draws)
	}
}

func TestGeneratorScanLens(t *testing.T) {
	ks := NewKeySpace(1000)
	g := MustNewGenerator(WorkloadE, ks, 5)
	sawScan := false
	for i := 0; i < 5000; i++ {
		op := g.Next()
		if op.Kind == OpScan {
			sawScan = true
			if op.ScanLen < 1 || op.ScanLen > 100 {
				t.Fatalf("scan length %d out of [1,100]", op.ScanLen)
			}
		}
	}
	if !sawScan {
		t.Fatal("workload E produced no scans")
	}
}

func TestGeneratorRejectsInvalidMix(t *testing.T) {
	if _, err := NewGenerator(Mix{Name: "x"}, NewKeySpace(1), 0); err == nil {
		t.Fatal("expected error for empty mix")
	}
}

func TestKeySpaceClaim(t *testing.T) {
	ks := NewKeySpace(5)
	if got := ks.Claim(); got != 5 {
		t.Fatalf("Claim = %d, want 5", got)
	}
	if ks.Count() != 6 {
		t.Fatalf("Count = %d, want 6", ks.Count())
	}
}

func TestLoadKeysUnique(t *testing.T) {
	keys := LoadKeys(10000)
	seen := make(map[uint64]bool, len(keys))
	for _, k := range keys {
		if seen[k] {
			t.Fatal("duplicate load key")
		}
		seen[k] = true
	}
}

func TestFillValueDeterministic(t *testing.T) {
	a := FillValue(42, 16, 1)
	b := FillValue(42, 16, 1)
	c := FillValue(42, 16, 2)
	if string(a) != string(b) {
		t.Fatal("FillValue must be deterministic")
	}
	if string(a) == string(c) {
		t.Fatal("FillValue must vary with version")
	}
	if len(FillValue(1, 100, 0)) != 100 {
		t.Fatal("FillValue size mismatch")
	}
}

func TestWorkloadFGeneratesRMW(t *testing.T) {
	ks := NewKeySpace(1000)
	g := MustNewGenerator(WorkloadF, ks, 11)
	var rmw, reads int
	for i := 0; i < 10000; i++ {
		switch g.Next().Kind {
		case OpReadModifyWrite:
			rmw++
		case OpRead:
			reads++
		default:
			t.Fatal("workload F produced an unexpected op kind")
		}
	}
	frac := float64(rmw) / 10000
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("RMW fraction %.3f, want ~0.5", frac)
	}
}

func TestOpKindString(t *testing.T) {
	cases := map[OpKind]string{OpRead: "READ", OpUpdate: "UPDATE", OpInsert: "INSERT", OpScan: "SCAN", OpReadModifyWrite: "RMW", OpKind(9): "OpKind(9)"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
