// Package ycsb generates YCSB-style key-value workloads (Cooper et al.,
// SoCC '10): the six core mixes the CHIME paper evaluates (A, B, C, D, E
// and LOAD), with Zipfian, uniform and latest request distributions over
// a keyspace that can grow under inserts.
//
// Keys are 8-byte integers produced by a bijective 64-bit mixer, so the
// i-th logical item maps to a unique, uniformly spread key — YCSB's
// default "hashed inserts" behaviour, which keeps B+-tree splits spread
// across the tree instead of hammering the right edge.
package ycsb

import "math"

// Zipfian draws from a Zipfian distribution over [0, n) with parameter
// theta, using the incremental-zeta method from Gray et al. ("Quickly
// generating billion-record synthetic databases", SIGMOD '94), the same
// algorithm YCSB uses. It supports a growing n: zeta is extended
// incrementally rather than recomputed.
//
// A Zipfian is not safe for concurrent use; give each client its own.
type Zipfian struct {
	theta float64
	n     uint64

	alpha, zetan, eta, zeta2theta float64
}

// NewZipfian builds a generator over [0, n) with the given skew
// (YCSB default 0.99). n must be at least 1; theta must be in (0, 1).
func NewZipfian(n uint64, theta float64) *Zipfian {
	if n < 1 {
		n = 1
	}
	z := &Zipfian{theta: theta}
	z.zeta2theta = zetaStatic(2, theta)
	z.grow(n)
	return z
}

func zetaStatic(n uint64, theta float64) float64 {
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// grow extends the distribution to cover [0, n).
func (z *Zipfian) grow(n uint64) {
	if n <= z.n {
		return
	}
	for i := z.n + 1; i <= n; i++ {
		z.zetan += 1 / math.Pow(float64(i), z.theta)
	}
	z.n = n
	z.alpha = 1 / (1 - z.theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-z.theta)) / (1 - z.zeta2theta/z.zetan)
}

// N returns the current item count the distribution covers.
func (z *Zipfian) N() uint64 { return z.n }

// Next draws one rank in [0, n); rank 0 is the most popular item. u must
// be uniform in [0, 1).
func (z *Zipfian) Next(u float64) uint64 {
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	v := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}

// NextN grows the distribution to cover n items and draws a rank. This
// is how insert-heavy workloads keep the distribution in step with the
// growing keyspace.
func (z *Zipfian) NextN(n uint64, u float64) uint64 {
	z.grow(n)
	return z.Next(u)
}

// Mix64 is the splitmix64 finalizer: a bijection on uint64 used to
// scatter sequential logical item IDs across the key space. Because it
// is a bijection, distinct IDs always yield distinct keys.
func Mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
