package rdwc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"chime/internal/dmsim"
)

func newClients(n int) []*dmsim.Client {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 1 << 20
	f := dmsim.MustNewFabric(cfg)
	cls := make([]*dmsim.Client, n)
	for i := range cls {
		cls[i] = f.NewClient()
	}
	return cls
}

func TestReadDelegation(t *testing.T) {
	cls := newClients(8)
	c := NewCombiner()
	var remoteReads atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	results := make([][]byte, 8)
	// Leader: blocks inside fn until everyone has piled up.
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], _ = c.Read(cls[0], 42, func() ([]byte, error) {
			remoteReads.Add(1)
			close(started)
			<-release
			cls[0].Advance(5000)
			return []byte("value"), nil
		})
	}()
	<-started
	for i := 1; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _ = c.Read(cls[i], 42, func() ([]byte, error) {
				remoteReads.Add(1)
				return []byte("value"), nil
			})
		}(i)
	}
	// Give followers a chance to register, then release the leader.
	for {
		c.mu.Lock()
		fl := c.reads[42]
		n := 0
		if fl != nil {
			n = 1
		}
		c.mu.Unlock()
		if n == 1 {
			d, _ := c.Stats()
			if d >= 7 {
				break
			}
		}
		// Followers register synchronously before blocking; spin until
		// the delegation count reaches 7.
		d, _ := c.Stats()
		if d >= 7 {
			break
		}
	}
	close(release)
	wg.Wait()

	if got := remoteReads.Load(); got != 1 {
		t.Fatalf("remote reads = %d, want 1 (delegation)", got)
	}
	for i, r := range results {
		if string(r) != "value" {
			t.Fatalf("client %d got %q", i, r)
		}
	}
	d, _ := c.Stats()
	if d != 7 {
		t.Fatalf("delegated = %d, want 7", d)
	}
	// Followers' clocks must be at or past the leader's completion.
	for i := 1; i < 8; i++ {
		if cls[i].Now() < cls[0].Now() {
			t.Fatalf("follower %d clock %d behind leader %d", i, cls[i].Now(), cls[0].Now())
		}
	}
}

func TestWriteCombining(t *testing.T) {
	cls := newClients(4)
	c := NewCombiner()
	var mu sync.Mutex
	var writes [][]byte
	started := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Write(cls[0], 7, []byte("v0"), func(v []byte) error {
			mu.Lock()
			writes = append(writes, append([]byte(nil), v...))
			first := len(writes) == 1
			mu.Unlock()
			if first {
				close(started)
				<-release
			}
			return nil
		})
	}()
	<-started
	for i := 1; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.Write(cls[i], 7, []byte(fmt.Sprintf("v%d", i)), func(v []byte) error {
				mu.Lock()
				writes = append(writes, append([]byte(nil), v...))
				mu.Unlock()
				return nil
			})
		}(i)
	}
	for {
		_, combined := c.Stats()
		if combined >= 3 {
			break
		}
	}
	close(release)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	// The leader wrote v0; the 3 combined writers collapsed into at
	// most a couple of flush rounds.
	if len(writes) < 2 || len(writes) > 3 {
		t.Fatalf("remote writes = %d (%q), want 2-3 (combining)", len(writes), writes)
	}
	if string(writes[0]) != "v0" {
		t.Fatalf("first write = %q", writes[0])
	}
}

func TestWriteErrorPropagates(t *testing.T) {
	cls := newClients(2)
	c := NewCombiner()
	boom := errors.New("boom")
	if err := c.Write(cls[0], 1, []byte("x"), func([]byte) error { return boom }); err != boom {
		t.Fatalf("err = %v", err)
	}
}

func TestReadErrorPropagates(t *testing.T) {
	cls := newClients(1)
	c := NewCombiner()
	boom := errors.New("boom")
	if _, err := c.Read(cls[0], 1, func() ([]byte, error) { return nil, boom }); err != boom {
		t.Fatalf("err = %v", err)
	}
	// The flight must be cleaned up: a second read runs fresh.
	calls := 0
	c.Read(cls[0], 1, func() ([]byte, error) { calls++; return nil, nil })
	if calls != 1 {
		t.Fatal("flight not cleaned up after error")
	}
}

func TestDistinctKeysDoNotCombine(t *testing.T) {
	cls := newClients(4)
	c := NewCombiner()
	var calls atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.Read(cls[i], uint64(i), func() ([]byte, error) {
				calls.Add(1)
				return nil, nil
			})
		}(i)
	}
	wg.Wait()
	if calls.Load() != 4 {
		t.Fatalf("distinct keys coalesced: %d calls", calls.Load())
	}
}

func TestCombinerUnderGatedCohort(t *testing.T) {
	// Followers suspend from the time gate while waiting; the leader
	// must be able to advance windows without them.
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 1 << 20
	f := dmsim.MustNewFabric(cfg)
	const n = 6
	cls := make([]*dmsim.Client, n)
	for i := range cls {
		cls[i] = f.NewClient()
		cls[i].JoinCohort()
	}
	c := NewCombiner()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer cls[i].LeaveCohort()
			buf := make([]byte, 64)
			for j := 0; j < 50; j++ {
				_, err := c.Read(cls[i], uint64(j%3), func() ([]byte, error) {
					// Leader does real gated verbs spanning windows.
					for k := 0; k < 3; k++ {
						if err := cls[i].Read(dmsim.GAddr{Off: 64}, buf); err != nil {
							return nil, err
						}
					}
					return []byte("ok"), nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	d, _ := c.Stats()
	if d == 0 {
		t.Fatal("expected some delegation under contention")
	}
}

func TestReadBypassOutsideVirtualWindow(t *testing.T) {
	cls := newClients(2)
	c := NewCombinerWindow(1000)
	started := make(chan struct{})
	release := make(chan struct{})
	var leaderCalls, followerCalls atomic.Int64

	go func() {
		c.Read(cls[0], 5, func() ([]byte, error) {
			leaderCalls.Add(1)
			close(started)
			<-release
			return []byte("old"), nil
		})
	}()
	<-started
	// The second client is far ahead in virtual time: merging would hand
	// it a result from its past, so it must bypass and read itself.
	cls[1].Advance(1_000_000)
	got, err := c.Read(cls[1], 5, func() ([]byte, error) {
		followerCalls.Add(1)
		return []byte("fresh"), nil
	})
	if err != nil || string(got) != "fresh" {
		t.Fatalf("bypass read = %q, %v", got, err)
	}
	if followerCalls.Load() != 1 {
		t.Fatal("future-era read must execute independently")
	}
	close(release)
	if d, _ := c.Stats(); d != 0 {
		t.Fatalf("delegated = %d, want 0", d)
	}
}

func TestWriteMergesAcrossBacklog(t *testing.T) {
	// Unlike reads, writes combine with an in-flight write even when the
	// writer is far ahead in virtual time: its value still gets flushed.
	cls := newClients(2)
	c := NewCombinerWindow(1000)
	started := make(chan struct{})
	release := make(chan struct{})
	var mu sync.Mutex
	var written []string

	go func() {
		c.Write(cls[0], 6, []byte("v0"), func(v []byte) error {
			mu.Lock()
			written = append(written, string(v))
			first := len(written) == 1
			mu.Unlock()
			if first {
				close(started)
				<-release
			}
			return nil
		})
	}()
	<-started
	cls[1].Advance(1_000_000) // far in the virtual future
	done := make(chan error, 1)
	go func() {
		done <- c.Write(cls[1], 6, []byte("v1"), func(v []byte) error {
			t.Error("combined writer must not issue its own remote write")
			return nil
		})
	}()
	for {
		if _, combined := c.Stats(); combined == 1 {
			break
		}
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(written) != 2 || written[1] != "v1" {
		t.Fatalf("flush sequence = %v", written)
	}
}
