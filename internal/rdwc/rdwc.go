// Package rdwc implements SMART's read-delegation and write-combining
// technique (OSDI '23, §5.1 of the CHIME paper), which the paper's
// evaluation applies to every index under test: concurrent operations
// on the same key issued from the same compute node are coalesced so
// only one client (the leader) touches the network, and the others
// (followers) adopt its result.
//
//   - Read delegation: while a read of key K is in flight, further reads
//     of K from the same CN wait for the leader's result instead of
//     issuing their own remote reads.
//   - Write combining: while an update of key K is in flight, further
//     updates of K overwrite a pending value; when the leader finishes
//     it (or a successor) writes only the latest pending value remotely.
//
// Virtual-time semantics: a follower's clock advances to the leader's
// completion time (never backward), exactly as if it had waited for the
// in-flight verb. Followers Suspend from the fabric's time gate while
// blocked so they do not stall the window, and Resume at the adopted
// completion time.
package rdwc

import (
	"sync"

	"chime/internal/dmsim"
	"chime/internal/obs"
)

// readFlight is one in-flight delegated read.
type readFlight struct {
	done    chan struct{}
	startAt int64 // leader's virtual clock when the read was issued

	val    []byte
	err    error
	doneAt int64 // leader's virtual completion time
}

// writeFlight is one in-flight combined write for a key.
type writeFlight struct {
	startAt int64

	mu      sync.Mutex
	pending []byte // latest value queued behind the in-flight write
	waiters []chan writeResult
}

type writeResult struct {
	err    error
	doneAt int64
}

// Combiner coalesces same-key operations from one compute node. All
// methods are safe for concurrent use.
type Combiner struct {
	window int64 // max virtual skew for coalescing, ns

	mu     sync.Mutex
	reads  map[uint64]*readFlight
	writes map[uint64]*writeFlight

	delegated int64 // reads served from a leader's flight
	combined  int64 // updates absorbed into a pending value
}

// DefaultWindowNs bounds coalescing to operations whose virtual
// intervals actually overlap the leader's in-flight operation (about
// one full multi-RTT update flight). Without this bound, a leader's
// flight — which spans many scheduler quanta in real time — would
// absorb requests from far ahead in virtual time and serialize hot keys
// behind a single leader chain, the opposite of what delegation does on
// real hardware.
const DefaultWindowNs = 12000

// NewCombiner returns an empty per-CN combiner with the default
// coalescing window.
func NewCombiner() *Combiner {
	return NewCombinerWindow(DefaultWindowNs)
}

// NewCombinerWindow sets an explicit virtual coalescing window.
func NewCombinerWindow(windowNs int64) *Combiner {
	return &Combiner{
		window: windowNs,
		reads:  make(map[uint64]*readFlight),
		writes: make(map[uint64]*writeFlight),
	}
}

// Stats reports how many operations were coalesced.
func (c *Combiner) Stats() (delegatedReads, combinedWrites int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.delegated, c.combined
}

// NoteExternalCombined folds writes coalesced outside the combiner —
// e.g. the batch write pipeline's per-leaf combining — into the
// combined-writes counter, so one CN-level figure covers both layers.
func (c *Combiner) NoteExternalCombined(n int64) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	c.combined += n
	c.mu.Unlock()
}

// Read performs a delegated read: the first caller for a key becomes
// the leader and runs fn; concurrent callers for the same key block
// (suspended from the time gate) and adopt the leader's result and
// completion time.
func (c *Combiner) Read(dc *dmsim.Client, key uint64, fn func() ([]byte, error)) ([]byte, error) {
	// Record followers as ops in their own right: the leader's nested
	// index op is absorbed by flight reentrancy, and a follower — whose
	// fn never runs — still ledgers its wait as write-combine time.
	if fr := dc.Flight(); fr != nil {
		fr.Begin(obs.OpSearch, dc.Now())
		defer func() { fr.End(dc.Now()) }()
	}
	now := dc.Now()
	c.mu.Lock()
	if fl, ok := c.reads[key]; ok && now <= fl.startAt+c.window && now+c.window >= fl.startAt {
		c.delegated++
		c.mu.Unlock()
		fr := dc.Flight()
		prev := fr.SetPhase(obs.PhaseWriteCombine)
		suspended := dc.Suspend()
		<-fl.done
		if suspended {
			dc.Resume(fl.doneAt)
		} else if fl.doneAt > dc.Now() {
			dc.Advance(fl.doneAt - dc.Now())
		}
		fr.SetPhase(prev)
		return fl.val, fl.err
	}
	if _, ok := c.reads[key]; ok {
		// A flight exists but does not overlap this client's virtual
		// interval: bypass and read independently.
		c.mu.Unlock()
		return fn()
	}
	fl := &readFlight{done: make(chan struct{}), startAt: now}
	c.reads[key] = fl
	c.mu.Unlock()

	fl.val, fl.err = fn()
	fl.doneAt = dc.Now()

	c.mu.Lock()
	delete(c.reads, key)
	c.mu.Unlock()
	close(fl.done)
	return fl.val, fl.err
}

// Write performs a combined write: the first caller for a key becomes
// the leader and runs fn with its own value; callers arriving while a
// write is in flight deposit their value (overwriting earlier pending
// ones — last writer wins, as in SMART) and wait. When the leader
// finishes, it writes the latest pending value too, so every combined
// caller's durability obligation is met with at most two remote writes.
func (c *Combiner) Write(dc *dmsim.Client, key uint64, value []byte, fn func(v []byte) error) error {
	if fr := dc.Flight(); fr != nil {
		fr.Begin(obs.OpUpdate, dc.Now())
		defer func() { fr.End(dc.Now()) }()
	}
	now := dc.Now()
	c.mu.Lock()
	// Writes combine with any in-flight same-key write that is not in
	// the follower's virtual future: the deposited value is always
	// flushed before the follower resumes, so — unlike delegated reads —
	// there is no staleness bound to respect. Under backlog this is what
	// lets a hot key absorb arbitrarily deep update queues with O(1)
	// remote writes per flight lifetime, as SMART's write combining does.
	if fl, ok := c.writes[key]; ok && now+c.window >= fl.startAt {
		// Combine: replace the pending value and wait for a flush.
		ch := make(chan writeResult, 1)
		fl.mu.Lock()
		fl.pending = value
		fl.waiters = append(fl.waiters, ch)
		fl.mu.Unlock()
		c.combined++
		c.mu.Unlock()

		fr := dc.Flight()
		prev := fr.SetPhase(obs.PhaseWriteCombine)
		suspended := dc.Suspend()
		res := <-ch
		if suspended {
			dc.Resume(res.doneAt)
		} else if res.doneAt > dc.Now() {
			dc.Advance(res.doneAt - dc.Now())
		}
		fr.SetPhase(prev)
		return res.err
	}
	if _, ok := c.writes[key]; ok {
		c.mu.Unlock()
		return fn(value) // no virtual overlap: write independently
	}
	fl := &writeFlight{startAt: now}
	c.writes[key] = fl
	c.mu.Unlock()

	err := fn(value)

	// Flush pending rounds until no more values were combined while we
	// were writing. The flight is only unregistered under c.mu once it
	// is provably drained, so no combiner can deposit a value that
	// nobody will ever flush.
	for {
		c.mu.Lock()
		fl.mu.Lock()
		if fl.pending == nil && len(fl.waiters) == 0 {
			delete(c.writes, key)
			fl.mu.Unlock()
			c.mu.Unlock()
			return err
		}
		pending := fl.pending
		waiters := fl.waiters
		fl.pending = nil
		fl.waiters = nil
		fl.mu.Unlock()
		c.mu.Unlock()

		var flushErr error
		if pending != nil {
			flushErr = fn(pending)
		}
		res := writeResult{err: flushErr, doneAt: dc.Now()}
		for _, ch := range waiters {
			ch <- res
		}
	}
}
