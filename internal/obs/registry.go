package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry is a named collection of counters, gauges and histograms.
// Lookup is mutex-protected and intended for construction time only:
// hot paths hold the returned instrument pointers. A nil *Registry
// hands out nil instruments, which are themselves no-ops.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// GaugeValue is a snapshot of one gauge.
type GaugeValue struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// Snapshot is a point-in-time copy of every instrument in a registry,
// serializable as the flat metrics JSON the bench harness emits.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters"`
	Gauges     map[string]GaugeValue     `json:"gauges"`
	Histograms map[string]HistogramStats `json:"histograms"`
}

// Snapshot copies the current instrument values. A nil registry yields
// an empty (but non-nil-mapped) snapshot so callers can index freely.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]GaugeValue{},
		Histograms: map[string]HistogramStats{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counts {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeValue{Value: g.Load(), Max: g.Max()}
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Stats()
	}
	return s
}

// CounterDelta returns s.Counters[name] - prev.Counters[name], treating
// absent names as zero — the per-phase delta the bench harness folds
// into each experiment row.
func (s Snapshot) CounterDelta(prev Snapshot, name string) int64 {
	return s.Counters[name] - prev.Counters[name]
}

// MarshalJSON renders the snapshot with sorted keys (encoding/json
// already sorts map keys; this exists to pin the schema in one place).
func (s Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot
	return json.Marshal(alias(s))
}

// Dump renders the snapshot as text, one instrument per line sorted by
// name, each tagged with its kind. The order is pinned (by test), so
// two dumps of equal registries are byte-identical and diff cleanly —
// the consumption contract for golden files and artifact diffing.
func (s Snapshot) Dump() string {
	type line struct{ name, rest string }
	var lines []line
	for n, v := range s.Counters {
		lines = append(lines, line{n, fmt.Sprintf("counter %d", v)})
	}
	for n, g := range s.Gauges {
		lines = append(lines, line{n, fmt.Sprintf("gauge %d max %d", g.Value, g.Max)})
	}
	for n, h := range s.Histograms {
		lines = append(lines, line{n, fmt.Sprintf("hist count %d mean %.1f p50 %d p99 %d max %d",
			h.Count, h.MeanNs, h.P50Ns, h.P99Ns, h.MaxNs)})
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].name < lines[j].name })
	var b strings.Builder
	for _, l := range lines {
		fmt.Fprintf(&b, "%s %s\n", l.name, l.rest)
	}
	return b.String()
}

// Names returns every instrument name in the snapshot, sorted — handy
// for stable test output.
func (s Snapshot) Names() []string {
	var names []string
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
