package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram is a log-bucketed histogram over virtual nanoseconds, good
// to ~3% relative error: 64 log2 major buckets subdivided into 16
// linear minor buckets each. It is the generalization of the latency
// histogram the bench harness grew first; updates are atomic so one
// histogram can be shared by every simulated client of a run. The zero
// value is ready to use, and a nil *Histogram is a no-op.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

const histBuckets = 64 * 16

// bucketOf maps a sample to its bucket index. Samples below 1 clamp to
// bucket 0 (virtual durations are at least 1 ns).
func bucketOf(ns int64) int {
	if ns < 1 {
		ns = 1
	}
	l := 63 - bits.LeadingZeros64(uint64(ns))
	minor := 0
	if l >= 4 {
		minor = int((ns >> (uint(l) - 4)) & 15)
	}
	idx := l*16 + minor
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// bucketMid returns the representative value reported for a bucket.
func bucketMid(idx int) int64 {
	l := idx / 16
	minor := idx % 16
	if l < 4 {
		return int64(1) << uint(l)
	}
	base := int64(1) << uint(l)
	step := base / 16
	return base + int64(minor)*step + step/2
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one sample. No-op on a nil histogram.
//
//chime:noalloc
func (h *Histogram) Observe(ns int64) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of samples recorded (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Mean returns the exact arithmetic mean of the samples (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Merge folds o's samples into h. Nil-safe on both sides.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	for i := range h.buckets {
		if v := o.buckets[i].Load(); v != 0 {
			h.buckets[i].Add(v)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
}

// Quantile returns the bucket-representative sample at the given
// quantile (0 < q <= 1); 0 when the histogram is empty or nil. q values
// outside (0, 1] are clamped.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(n)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= target {
			return bucketMid(i)
		}
	}
	return bucketMid(histBuckets - 1)
}

// HistogramStats is a serializable summary of a histogram.
type HistogramStats struct {
	Count  int64   `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  int64   `json:"p50_ns"`
	P90Ns  int64   `json:"p90_ns"`
	P99Ns  int64   `json:"p99_ns"`
	MaxNs  int64   `json:"max_ns"`
}

// Stats summarizes the histogram. The zero summary is returned for nil
// or empty histograms.
func (h *Histogram) Stats() HistogramStats {
	if h == nil || h.count.Load() == 0 {
		return HistogramStats{}
	}
	return HistogramStats{
		Count:  h.Count(),
		MeanNs: h.Mean(),
		P50Ns:  h.Quantile(0.50),
		P90Ns:  h.Quantile(0.90),
		P99Ns:  h.Quantile(0.99),
		MaxNs:  h.Quantile(1.0),
	}
}
