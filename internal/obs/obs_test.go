package obs

import (
	"sync"
	"testing"
)

func TestNilSafetyEverywhere(t *testing.T) {
	// The whole point of the layer: a nil sink must make every
	// instrumented call a no-op rather than a panic.
	var s *Sink
	if s.Registry() != nil || s.Tracer() != nil {
		t.Fatal("nil sink must hand out nil channels")
	}
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(5)
	g.Add(1)
	g.Set(9)
	h.Observe(3)
	if c.Load() != 0 || g.Load() != 0 || g.Max() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Names()) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}

	ins := ResolveIndex(nil)
	ins.Retries.Inc()
	ins.TornReads.Add(2)
	sp := ins.Tracer.Begin("op", "idx", 1, 0)
	sp.Arg("k", 1)
	sp.End(10)
	ins.Tracer.Instant("x", "idx", 1, 5)
	ins.Tracer.CounterSample("nic", 5, map[string]float64{"v": 1})
	if ins.Tracer.Len() != 0 {
		t.Fatal("nil tracer must buffer nothing")
	}
}

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("Counter must be stable per name")
	}
	r.Counter("a").Add(3)
	r.Counter("a").Inc()
	r.Gauge("g").Add(5)
	r.Gauge("g").Add(-2)
	r.Histogram("h").Observe(100)

	snap := r.Snapshot()
	if snap.Counters["a"] != 4 {
		t.Fatalf("counter a = %d", snap.Counters["a"])
	}
	if gv := snap.Gauges["g"]; gv.Value != 3 || gv.Max != 5 {
		t.Fatalf("gauge g = %+v", gv)
	}
	if snap.Histograms["h"].Count != 1 {
		t.Fatalf("hist h = %+v", snap.Histograms["h"])
	}

	r.Counter("a").Add(10)
	if d := r.Snapshot().CounterDelta(snap, "a"); d != 10 {
		t.Fatalf("CounterDelta = %d", d)
	}
	if d := r.Snapshot().CounterDelta(snap, "missing"); d != 0 {
		t.Fatalf("missing CounterDelta = %d", d)
	}
}

func TestInstrumentsConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(int64(i + 1))
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("counter = %d", c.Load())
	}
	if g.Load() != 0 || g.Max() < 1 || g.Max() > 8 {
		t.Fatalf("gauge = %d max %d", g.Load(), g.Max())
	}
	if h.Count() != 8000 {
		t.Fatalf("hist count = %d", h.Count())
	}
}

func TestResolveIndexNames(t *testing.T) {
	s := NewSink(true)
	ins := ResolveIndex(s)
	if ins.Tracer == nil {
		t.Fatal("traced sink must resolve a tracer")
	}
	ins.Retries.Inc()
	ins.WCCombined.Add(7)
	snap := s.Registry().Snapshot()
	if snap.Counters[NameRetry] != 1 || snap.Counters[NameWCCombined] != 7 {
		t.Fatalf("instrument names not registered: %+v", snap.Counters)
	}
	if ResolveIndex(NewSink(false)).Tracer != nil {
		t.Fatal("untraced sink must resolve a nil tracer")
	}
}
