package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Per-op flight recorder. Every index operation carries a phase ledger:
// the op's virtual-time latency is decomposed into the protocol phases
// the simulator already computes (descend propagation, CN-side cache
// work, lock-CAS backoff, NIC queueing and service, MN CPU queueing and
// service, fault-retry penalty, write-combine wait), charged in virtual
// nanoseconds by dmsim as the op runs. The recorder folds finished
// ledgers into a per-op-class attribution matrix (mean and tail shares
// per phase), keeps a bounded top-K of the slowest exemplar ops per
// class with deterministic tie-breaks, and maintains a ring of
// fixed-width virtual-time windows (throughput, latency quantiles,
// NIC/MN busy time per window).
//
// Like the rest of the package, recording is strictly observational:
// every charge is a delta between virtual clock values dmsim computed
// anyway, so attaching a recorder never changes a clock, a completion
// time, or a bench fingerprint (pinned by the bench harness's
// zero-perturbation tests). All aggregation is order-independent
// (atomic sums keyed by virtual time and latency bucket; exemplars kept
// per client and merged with a total order), so reports are
// deterministic for a deterministic run regardless of host
// interleaving.

// Phase is one component of an op's latency ledger.
type Phase uint8

const (
	// PhaseDescend is the catch-all traversal phase: round-trip
	// propagation and issue overhead of the op's verbs plus any CN-side
	// work not labeled more specifically. It is the active phase unless
	// a layer sets a narrower one.
	PhaseDescend Phase = iota

	// PhaseCacheLookup is CN-side cache/local-compute work (node-cache
	// probes, hashing, local search).
	PhaseCacheLookup

	// PhaseLockBackoff is time spent backing off after failed remote
	// lock CASes, plus local lock-table handover waits.
	PhaseLockBackoff

	// PhaseWriteCombine is time a delegated/combined op spent waiting on
	// its leader's completion (the rdwc layer).
	PhaseWriteCombine

	// PhaseNICQueue is time the op's verbs waited for a busy NIC.
	PhaseNICQueue

	// PhaseNICService is NIC service time of the op's verbs.
	PhaseNICService

	// PhaseMNQueue is time offloaded programs waited for an MN core.
	PhaseMNQueue

	// PhaseMNService is MN CPU service time (offloaded programs, alloc
	// RPC handlers).
	PhaseMNService

	// PhaseFaultRetry is fault-plane penalty time (latency spikes,
	// timeout-repost rounds).
	PhaseFaultRetry

	// NumPhases is the ledger width.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"descend", "cache_lookup", "lock_backoff", "write_combine",
	"nic_queue", "nic_service", "mn_queue", "mn_service", "fault_retry",
}

func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "phase?"
}

// PhaseNames returns the ledger's phase names in Phase order.
func PhaseNames() []string {
	out := make([]string, NumPhases)
	copy(out, phaseNames[:])
	return out
}

// OpClass buckets ops for attribution.
type OpClass uint8

const (
	OpSearch OpClass = iota
	OpInsert
	OpUpdate
	OpDelete
	OpScan
	// OpBatchRead / OpBatchWrite cover the pipelined multi-key entry
	// points; one batch records as one op.
	OpBatchRead
	OpBatchWrite
	NumOpClasses
)

var opClassNames = [NumOpClasses]string{
	"search", "insert", "update", "delete", "scan", "batch_read", "batch_write",
}

func (c OpClass) String() string {
	if c < NumOpClasses {
		return opClassNames[c]
	}
	return "op?"
}

// Flight is one client's recording handle. dmsim charges verb timing
// into it; index layers bracket ops with Begin/End and label narrower
// phases with SetPhase. A Flight is owned by its client's goroutine and
// is not safe for concurrent use (exactly like the dmsim.Client it
// rides on). Nil-safe: every method no-ops on a nil *Flight, so the
// disabled path costs one branch.
type Flight struct {
	rec    *FlightRecorder
	client int64

	depth int // Begin/End nesting; the outermost op wins
	class OpClass
	seq   int64 // per-client op sequence, the exemplar tie-break
	start int64
	cur   Phase
	led   [NumPhases]int64

	// top holds this client's slowest exemplars per class, sorted
	// slowest-first. Per-client capture needs no locks and merges
	// deterministically at report time.
	top [NumOpClasses][]exemplar
}

type exemplar struct {
	client int64
	seq    int64
	start  int64
	total  int64
	led    [NumPhases]int64
}

// Begin opens an op of the given class at virtual time now. Nested
// Begins (an op implemented on top of another instrumented op, e.g. a
// combiner wrapping an index op) only deepen the nesting: the outermost
// Begin/End pair defines the recorded op.
func (f *Flight) Begin(class OpClass, now int64) {
	if f == nil {
		return
	}
	f.depth++
	if f.depth > 1 {
		return
	}
	f.class = class
	f.start = now
	f.cur = PhaseDescend
	f.led = [NumPhases]int64{}
}

// End closes the current op at virtual time now and, for the outermost
// nesting level, folds its ledger into the recorder.
func (f *Flight) End(now int64) {
	if f == nil || f.depth == 0 {
		return
	}
	f.depth--
	if f.depth > 0 {
		return
	}
	f.seq++
	f.rec.opDone(f, now)
}

// Recording reports whether an op is currently open.
func (f *Flight) Recording() bool { return f != nil && f.depth > 0 }

// SetPhase sets the active phase charged by ChargeActive (local compute,
// verb propagation) and returns the previous one, so callers can bracket
// a region and restore. No-op returning PhaseDescend on nil.
func (f *Flight) SetPhase(p Phase) Phase {
	if f == nil {
		return PhaseDescend
	}
	prev := f.cur
	f.cur = p
	return prev
}

// ChargeActive charges ns to the active phase.
func (f *Flight) ChargeActive(ns int64) {
	if f == nil || f.depth == 0 || ns <= 0 {
		return
	}
	f.led[f.cur] += ns
}

// Charge charges ns to an explicit phase.
func (f *Flight) Charge(p Phase, ns int64) {
	if f == nil || f.depth == 0 || ns <= 0 {
		return
	}
	f.led[p] += ns
}

// ChargeVerb attributes one polled verb's clock jump to phases. The
// verb's virtual timeline ends, in order: fault penalty, NIC queue, NIC
// service, MN queue, MN service (both zero for plain verbs), return
// propagation (rtt). The client's clock jump covers the LAST jump
// nanoseconds of that timeline (pipelined verbs overlap their early
// segments with work the client already did — and already charged), so
// segments are peeled from the end. Propagation is charged to the
// active phase: "descend" means round trips, not wire congestion.
//
//chime:noalloc
func (f *Flight) ChargeVerb(jump, penalty, nicQueue, nicSvc, mnQueue, mnSvc, rtt int64) {
	if f == nil || f.depth == 0 || jump <= 0 {
		return
	}
	jump = f.peel(f.cur, rtt, jump)
	jump = f.peel(PhaseMNService, mnSvc, jump)
	jump = f.peel(PhaseMNQueue, mnQueue, jump)
	jump = f.peel(PhaseNICService, nicSvc, jump)
	jump = f.peel(PhaseNICQueue, nicQueue, jump)
	jump = f.peel(PhaseFaultRetry, penalty, jump)
	// Anything left predates the verb (clock behind the whole verb
	// timeline cannot happen — post charges issue overhead first — but
	// stay total rather than silently losing nanoseconds).
	f.peel(f.cur, jump, jump)
}

// peel charges min(ns, jump) of the remaining clock jump to phase p and
// returns what is left of the jump.
//
//chime:noalloc
func (f *Flight) peel(p Phase, ns, jump int64) int64 {
	if jump <= 0 || ns <= 0 {
		return jump
	}
	if ns > jump {
		ns = jump
	}
	f.led[p] += ns
	return jump - ns
}

// FlightConfig sizes a recorder. Zero fields take defaults.
type FlightConfig struct {
	// TopK is the number of slowest exemplars kept per op class
	// (default 8).
	TopK int

	// TimelineWindowNs is the width of one timeline window in virtual ns
	// (default 50µs); TimelineWindows is the ring size (default 512).
	// The ring covers the last WindowNs*Windows virtual ns of the run;
	// older windows are evicted and counted as dropped.
	TimelineWindowNs int64
	TimelineWindows  int
}

const (
	defaultTopK             = 8
	defaultTimelineWindowNs = 50_000
	defaultTimelineWindows  = 512
)

// classAgg is the per-op-class attribution matrix: per-phase virtual-ns
// sums overall (mean shares) and per latency bucket (tail shares — the
// p99 story is "what were the slowest ops doing"), plus the class
// latency histogram. All sums are atomic, hence order-independent and
// deterministic for a deterministic run.
type classAgg struct {
	hist  Histogram
	latNs atomic.Int64

	phaseNs     [NumPhases]atomic.Int64
	bucketLatNs [histBuckets]atomic.Int64
	bucketPhase [histBuckets][NumPhases]atomic.Int64
}

// tlWindow is one timeline ring slot.
type tlWindow struct {
	mu      sync.Mutex
	startNs int64 // virtual start of the window occupying the slot; -1 empty
	ops     int64
	lat     Histogram
	nicBusy int64
	mnBusy  int64
}

// FlightRecorder aggregates flight ledgers across every client of a
// run: the attribution matrix, the slowest-exemplar capture, and the
// windowed virtual-time timeline. Hook methods (opDone, AddNICBusy,
// AddMNBusy) are safe for concurrent use; Reset and the report methods
// must run while no ops are in flight (between bench phases), exactly
// like Fabric.SetObserver. A nil recorder disables everything.
type FlightRecorder struct {
	topK     int
	windowNs int64

	classes [NumOpClasses]classAgg

	origin  atomic.Int64 // timeline origin, set by Reset
	windows []tlWindow
	dropped atomic.Int64 // ops/spans outside the ring (evicted windows)

	mu      sync.Mutex
	flights []*Flight
}

// NewFlightRecorder builds a recorder.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	if cfg.TopK <= 0 {
		cfg.TopK = defaultTopK
	}
	if cfg.TimelineWindowNs <= 0 {
		cfg.TimelineWindowNs = defaultTimelineWindowNs
	}
	if cfg.TimelineWindows <= 0 {
		cfg.TimelineWindows = defaultTimelineWindows
	}
	r := &FlightRecorder{
		topK:     cfg.TopK,
		windowNs: cfg.TimelineWindowNs,
		windows:  make([]tlWindow, cfg.TimelineWindows),
	}
	for i := range r.windows {
		r.windows[i].startNs = -1
	}
	return r
}

// NewFlight registers a new per-client flight. Nil-safe: a nil recorder
// hands out a nil flight, which disables recording for that client.
func (r *FlightRecorder) NewFlight(clientID int64) *Flight {
	if r == nil {
		return nil
	}
	f := &Flight{rec: r, client: clientID}
	r.mu.Lock()
	r.flights = append(r.flights, f)
	r.mu.Unlock()
	return f
}

// Reset zeroes every aggregate, exemplar and window and re-origins the
// timeline at originNs — the bench harness calls it when the measured
// phase starts, so bulk-load traffic never pollutes attribution. Must
// not race with in-flight ops.
func (r *FlightRecorder) Reset(originNs int64) {
	if r == nil {
		return
	}
	for c := range r.classes {
		a := &r.classes[c]
		a.hist = Histogram{}
		a.latNs.Store(0)
		for p := range a.phaseNs {
			a.phaseNs[p].Store(0)
		}
		for b := range a.bucketLatNs {
			a.bucketLatNs[b].Store(0)
			for p := range a.bucketPhase[b] {
				a.bucketPhase[b][p].Store(0)
			}
		}
	}
	for i := range r.windows {
		w := &r.windows[i]
		w.mu.Lock()
		w.startNs = -1
		w.ops = 0
		w.lat = Histogram{}
		w.nicBusy = 0
		w.mnBusy = 0
		w.mu.Unlock()
	}
	r.dropped.Store(0)
	r.origin.Store(originNs)
	r.mu.Lock()
	for _, f := range r.flights {
		f.top = [NumOpClasses][]exemplar{}
	}
	r.mu.Unlock()
}

// opDone folds one finished op into the matrix, the exemplar capture
// and the timeline.
func (r *FlightRecorder) opDone(f *Flight, end int64) {
	if r == nil {
		return
	}
	total := end - f.start
	if total < 0 {
		total = 0
	}
	a := &r.classes[f.class]
	a.hist.Observe(total)
	a.latNs.Add(total)
	b := bucketOf(total)
	a.bucketLatNs[b].Add(total)
	for p, ns := range f.led {
		if ns != 0 {
			a.phaseNs[p].Add(ns)
			a.bucketPhase[b][p].Add(ns)
		}
	}
	f.insertExemplar(total)

	// Timeline: the op lands in the window containing its completion.
	if w, wstart, ok := r.slot(end); ok {
		w.mu.Lock()
		if r.claim(w, wstart) {
			w.ops++
			w.lat.Observe(total)
		}
		w.mu.Unlock()
	}
}

// insertExemplar keeps the flight's per-class top-K slowest ops, sorted
// slowest-first; equal totals keep the earlier op (lower seq).
func (f *Flight) insertExemplar(total int64) {
	k := f.rec.topK
	top := f.top[f.class]
	if len(top) == k && total <= top[k-1].total {
		return
	}
	e := exemplar{client: f.client, seq: f.seq, start: f.start, total: total, led: f.led}
	i := sort.Search(len(top), func(i int) bool { return top[i].total < total })
	if len(top) < k {
		top = append(top, exemplar{})
	}
	copy(top[i+1:], top[i:])
	top[i] = e
	f.top[f.class] = top
}

// slot maps a virtual time to its ring slot and window start. ok=false
// before the timeline origin.
func (r *FlightRecorder) slot(t int64) (*tlWindow, int64, bool) {
	org := r.origin.Load()
	if t < org {
		return nil, 0, false
	}
	idx := (t - org) / r.windowNs
	w := &r.windows[idx%int64(len(r.windows))]
	return w, org + idx*r.windowNs, true
}

// claim prepares a locked slot for the window starting at wstart:
// reuses it in place, recycles it from an older window, or refuses when
// the slot has already moved on to a newer window (the sample is late;
// it lands in dropped). Callers hold w.mu.
func (r *FlightRecorder) claim(w *tlWindow, wstart int64) bool {
	switch {
	case w.startNs == wstart:
		return true
	case w.startNs > wstart:
		r.dropped.Add(1)
		return false
	default:
		if w.startNs >= 0 && w.ops > 0 {
			r.dropped.Add(w.ops)
		}
		w.startNs = wstart
		w.ops = 0
		w.lat = Histogram{}
		w.nicBusy = 0
		w.mnBusy = 0
		return true
	}
}

// AddNICBusy charges a NIC service span [start, end) to the timeline's
// per-window NIC busy accumulators, split across window boundaries.
func (r *FlightRecorder) AddNICBusy(start, end int64) {
	r.addBusy(start, end, false)
}

// AddMNBusy charges an MN CPU service span to the timeline.
func (r *FlightRecorder) AddMNBusy(start, end int64) {
	r.addBusy(start, end, true)
}

func (r *FlightRecorder) addBusy(start, end int64, mn bool) {
	if r == nil || end <= start {
		return
	}
	if org := r.origin.Load(); start < org {
		start = org
		if end <= start {
			return
		}
	}
	// Walk the covered windows; a span longer than the whole ring keeps
	// only its last ring-span worth (older windows would be evicted
	// immediately anyway).
	span := r.windowNs * int64(len(r.windows))
	if end-start > span {
		start = end - span
	}
	for start < end {
		w, wstart, ok := r.slot(start)
		if !ok {
			return
		}
		wend := wstart + r.windowNs
		chunk := end - start
		if m := wend - start; m < chunk {
			chunk = m
		}
		w.mu.Lock()
		if r.claim(w, wstart) {
			if mn {
				w.mnBusy += chunk
			} else {
				w.nicBusy += chunk
			}
		}
		w.mu.Unlock()
		start = wend
	}
}

// Exemplar is one captured slow op in a report.
type Exemplar struct {
	Client  int64            `json:"client"`
	Seq     int64            `json:"seq"`
	StartNs int64            `json:"start_ns"`
	TotalNs int64            `json:"total_ns"`
	PhaseNs map[string]int64 `json:"phase_ns"`
}

// PhaseShare maps phase name to its share of measured latency.
type PhaseShare map[string]float64

// ClassAttribution is the attribution of one op class.
type ClassAttribution struct {
	Class  string  `json:"class"`
	Ops    int64   `json:"ops"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  int64   `json:"p50_ns"`
	P99Ns  int64   `json:"p99_ns"`

	// MeanShare decomposes the class's total measured latency;
	// TailShare decomposes the latency of the ops in the p99 bucket and
	// above. Coverage / TailCoverage is the fraction of that latency
	// the ledger explains (the bench pins >= 0.95).
	MeanShare    PhaseShare `json:"mean_share"`
	TailShare    PhaseShare `json:"tail_share"`
	Coverage     float64    `json:"coverage"`
	TailCoverage float64    `json:"tail_coverage"`

	Exemplars []Exemplar `json:"exemplars"`
}

// AttributionReport is the recorder's folded view: one entry per op
// class that recorded ops, in fixed class order.
type AttributionReport struct {
	Phases  []string           `json:"phases"`
	Classes []ClassAttribution `json:"classes"`
}

// Attribution folds the matrix into shares. Call quiesced (no ops in
// flight).
func (r *FlightRecorder) Attribution() AttributionReport {
	rep := AttributionReport{Phases: PhaseNames()}
	if r == nil {
		return rep
	}
	for ci := OpClass(0); ci < NumOpClasses; ci++ {
		a := &r.classes[ci]
		n := a.hist.Count()
		if n == 0 {
			continue
		}
		ca := ClassAttribution{
			Class:     ci.String(),
			Ops:       n,
			MeanNs:    a.hist.Mean(),
			P50Ns:     a.hist.Quantile(0.50),
			P99Ns:     a.hist.Quantile(0.99),
			MeanShare: PhaseShare{},
			TailShare: PhaseShare{},
			Exemplars: r.exemplars(ci),
		}
		lat := a.latNs.Load()
		b99 := bucketOf(ca.P99Ns)
		var tailLat int64
		var tailPhase [NumPhases]int64
		for b := b99; b < histBuckets; b++ {
			tailLat += a.bucketLatNs[b].Load()
			for p := range tailPhase {
				tailPhase[p] += a.bucketPhase[b][p].Load()
			}
		}
		var cov, tailCov int64
		for p := Phase(0); p < NumPhases; p++ {
			ns := a.phaseNs[p].Load()
			cov += ns
			tailCov += tailPhase[p]
			if lat > 0 {
				ca.MeanShare[p.String()] = float64(ns) / float64(lat)
			}
			if tailLat > 0 {
				ca.TailShare[p.String()] = float64(tailPhase[p]) / float64(tailLat)
			}
		}
		if lat > 0 {
			ca.Coverage = float64(cov) / float64(lat)
		}
		if tailLat > 0 {
			ca.TailCoverage = float64(tailCov) / float64(tailLat)
		}
		rep.Classes = append(rep.Classes, ca)
	}
	return rep
}

// exemplars merges every client's per-class top-K into the global top-K,
// ordered by (total desc, client asc, seq asc) — a total order, so the
// pick is deterministic however clients interleaved.
func (r *FlightRecorder) exemplars(class OpClass) []Exemplar {
	r.mu.Lock()
	var all []exemplar
	for _, f := range r.flights {
		all = append(all, f.top[class]...)
	}
	r.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].total != all[j].total {
			return all[i].total > all[j].total
		}
		if all[i].client != all[j].client {
			return all[i].client < all[j].client
		}
		return all[i].seq < all[j].seq
	})
	if len(all) > r.topK {
		all = all[:r.topK]
	}
	out := make([]Exemplar, 0, len(all))
	for _, e := range all {
		x := Exemplar{Client: e.client, Seq: e.seq, StartNs: e.start, TotalNs: e.total,
			PhaseNs: map[string]int64{}}
		for p, ns := range e.led {
			if ns != 0 {
				x.PhaseNs[Phase(p).String()] = ns
			}
		}
		out = append(out, x)
	}
	return out
}

// TimelineWindow is one populated window of the timeline report.
type TimelineWindow struct {
	StartNs        int64   `json:"start_ns"`
	Ops            int64   `json:"ops"`
	ThroughputMops float64 `json:"throughput_mops"`
	P50Ns          int64   `json:"p50_ns"`
	P99Ns          int64   `json:"p99_ns"`
	NICBusyNs      int64   `json:"nic_busy_ns"`
	MNBusyNs       int64   `json:"mn_busy_ns"`

	// Utilizations are busy time over window width times resource count
	// (see Timeline's arguments); zero when the count was unknown.
	NICUtilization float64 `json:"nic_utilization"`
	MNUtilization  float64 `json:"mn_utilization"`
}

// TimelineReport is the windowed virtual-time view of a run.
type TimelineReport struct {
	WindowNs int64            `json:"window_ns"`
	OriginNs int64            `json:"origin_ns"`
	Dropped  int64            `json:"dropped"`
	Windows  []TimelineWindow `json:"windows"`
}

// Timeline snapshots the ring, oldest window first. nics and mnCores
// normalize the per-window busy accumulators into utilizations (pass 0
// to skip). Call quiesced.
func (r *FlightRecorder) Timeline(nics, mnCores int) TimelineReport {
	rep := TimelineReport{}
	if r == nil {
		return rep
	}
	rep.WindowNs = r.windowNs
	rep.OriginNs = r.origin.Load()
	rep.Dropped = r.dropped.Load()
	for i := range r.windows {
		w := &r.windows[i]
		w.mu.Lock()
		if w.startNs >= 0 {
			tw := TimelineWindow{
				StartNs:   w.startNs,
				Ops:       w.ops,
				NICBusyNs: w.nicBusy,
				MNBusyNs:  w.mnBusy,
			}
			if w.ops > 0 {
				tw.ThroughputMops = float64(w.ops) * 1e3 / float64(r.windowNs)
				tw.P50Ns = w.lat.Quantile(0.50)
				tw.P99Ns = w.lat.Quantile(0.99)
			}
			if nics > 0 {
				tw.NICUtilization = float64(w.nicBusy) / float64(r.windowNs*int64(nics))
			}
			if mnCores > 0 {
				tw.MNUtilization = float64(w.mnBusy) / float64(r.windowNs*int64(mnCores))
			}
			rep.Windows = append(rep.Windows, tw)
		}
		w.mu.Unlock()
	}
	sort.Slice(rep.Windows, func(i, j int) bool { return rep.Windows[i].StartNs < rep.Windows[j].StartNs })
	return rep
}
