package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Tracer collects timestamped events in Chrome trace_event format
// (loadable in about:tracing / Perfetto). Timestamps are dmsim virtual
// nanoseconds supplied by the caller — the tracer never reads a host
// clock, so traces are deterministic in virtual time.
//
// Appends are mutex-protected; tracing is opt-in and its cost is only
// paid when a tracer is attached. The event buffer is bounded
// (MaxEvents); once full, further events are counted as dropped rather
// than growing without limit.
type Tracer struct {
	mu      sync.Mutex
	events  []traceEvent
	dropped int64
}

// MaxEvents bounds the trace buffer (~a few hundred MB of JSON at the
// limit, far beyond any smoke run).
const MaxEvents = 1 << 21

// traceEvent is one Chrome trace_event entry. Ph "X" is a complete
// span, "i" an instant, "C" a counter sample. Ts/Dur are microseconds
// (the format's unit); fractional values carry the nanosecond digits.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
	S    string         `json:"s,omitempty"` // instant scope
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

func usFromNs(ns int64) float64 { return float64(ns) / 1e3 }

func (t *Tracer) append(ev traceEvent) {
	t.mu.Lock()
	if len(t.events) >= MaxEvents {
		t.dropped++
	} else {
		t.events = append(t.events, ev)
	}
	t.mu.Unlock()
}

// Span is one in-flight traced operation. A nil *Span (from a nil
// tracer) ignores every call.
type Span struct {
	t       *Tracer
	name    string
	cat     string
	tid     int64
	startNs int64
	args    map[string]any
}

// Begin opens a span at the given virtual time on the given simulated
// thread (client) id. Returns nil — and costs nothing further — on a
// nil tracer.
func (t *Tracer) Begin(name, cat string, tid, startNs int64) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, cat: cat, tid: tid, startNs: startNs}
}

// Arg attaches a key/value argument shown in the trace viewer.
func (s *Span) Arg(key string, value any) {
	if s == nil {
		return
	}
	if s.args == nil {
		s.args = make(map[string]any, 4)
	}
	s.args[key] = value
}

// End closes the span at the given virtual time, emitting a complete
// ("X") event.
func (s *Span) End(endNs int64) {
	if s == nil {
		return
	}
	dur := endNs - s.startNs
	if dur < 0 {
		dur = 0
	}
	s.t.append(traceEvent{
		Name: s.name, Cat: s.cat, Ph: "X",
		Ts: usFromNs(s.startNs), Dur: usFromNs(dur),
		Pid: 0, Tid: s.tid, Args: s.args,
	})
}

// Instant emits a zero-duration event (thread-scoped).
func (t *Tracer) Instant(name, cat string, tid, tsNs int64) {
	if t == nil {
		return
	}
	t.append(traceEvent{Name: name, Cat: cat, Ph: "i", Ts: usFromNs(tsNs), Pid: 0, Tid: tid, S: "t"})
}

// CounterSample emits a counter ("C") event: a named multi-series
// sample rendered as a stacked timeline by the viewer. Used for the
// per-NIC utilization/queue-depth timelines.
func (t *Tracer) CounterSample(name string, tsNs int64, series map[string]float64) {
	if t == nil {
		return
	}
	args := make(map[string]any, len(series))
	for k, v := range series {
		args[k] = v
	}
	t.append(traceEvent{Name: name, Ph: "C", Ts: usFromNs(tsNs), Pid: 0, Args: args})
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events were discarded after the buffer
// filled.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteJSON writes the trace in the Chrome trace_event JSON object
// format ({"traceEvents": [...]}), which about:tracing and Perfetto
// load directly.
func (t *Tracer) WriteJSON(w io.Writer) error {
	var events []traceEvent
	if t != nil {
		t.mu.Lock()
		events = append(events, t.events...)
		t.mu.Unlock()
	}
	if events == nil {
		events = []traceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ns"})
}
