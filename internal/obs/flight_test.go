package obs

import (
	"reflect"
	"testing"
)

// ledgerOf folds a recorder's attribution for one class into a plain
// phase→ns map via the share report, scaled back by total latency.
func classOf(t *testing.T, r *FlightRecorder, class OpClass) ClassAttribution {
	t.Helper()
	for _, ca := range r.Attribution().Classes {
		if ca.Class == class.String() {
			return ca
		}
	}
	t.Fatalf("class %s not in report", class)
	return ClassAttribution{}
}

// TestChargeVerbPeel checks the end-first peel: the clock jump covers
// the LAST jump nanoseconds of the verb timeline, so with full overlap
// the queue/penalty segments (earliest) are attributed least.
func TestChargeVerbPeel(t *testing.T) {
	r := NewFlightRecorder(FlightConfig{})
	f := r.NewFlight(1)
	f.Begin(OpSearch, 0)
	// Unpipelined: jump equals the whole timeline.
	f.ChargeVerb(100+200+300+0+0+50, 100, 200, 300, 0, 0, 50)
	if want := [NumPhases]int64{
		PhaseDescend:    50,
		PhaseNICQueue:   200,
		PhaseNICService: 300,
		PhaseFaultRetry: 100,
	}; f.led != want {
		t.Errorf("unpipelined peel: got %v want %v", f.led, want)
	}
	f.led = [NumPhases]int64{}
	// Pipelined: the client polled late, only the last 400ns of the
	// timeline remain — rtt(50) + mnSvc(0) + nicSvc(300) + 50 of queue.
	f.ChargeVerb(400, 100, 200, 300, 0, 0, 50)
	if want := [NumPhases]int64{
		PhaseDescend:    50,
		PhaseNICQueue:   50,
		PhaseNICService: 300,
	}; f.led != want {
		t.Errorf("pipelined peel: got %v want %v", f.led, want)
	}
	f.led = [NumPhases]int64{}
	// Offload verb with MN segments, active phase relabeled.
	f.SetPhase(PhaseCacheLookup)
	f.ChargeVerb(10+20+30+40+50+60, 10, 20, 30, 40, 50, 60)
	if want := [NumPhases]int64{
		PhaseCacheLookup: 60,
		PhaseMNService:   50,
		PhaseMNQueue:     40,
		PhaseNICService:  30,
		PhaseNICQueue:    20,
		PhaseFaultRetry:  10,
	}; f.led != want {
		t.Errorf("offload peel: got %v want %v", f.led, want)
	}
	f.End(210)
	ca := classOf(t, r, OpSearch)
	if ca.Ops != 1 {
		t.Fatalf("ops = %d", ca.Ops)
	}
	// Σcharges = 550+400+210 > total 210, but coverage is per-class
	// Σphase/Σlatency and this synthetic op over-charged deliberately;
	// just check the shares exist for every charged phase.
	for _, ph := range []Phase{PhaseCacheLookup, PhaseMNService, PhaseNICQueue} {
		if ca.MeanShare[ph.String()] == 0 {
			t.Errorf("share for %s missing", ph)
		}
	}
}

// TestFlightNesting: inner Begin/End pairs are absorbed; charges land
// on the outermost op.
func TestFlightNesting(t *testing.T) {
	r := NewFlightRecorder(FlightConfig{})
	f := r.NewFlight(1)
	f.Begin(OpUpdate, 0)
	f.Begin(OpSearch, 10) // nested: ignored
	f.ChargeActive(5)
	f.End(20)
	if !f.Recording() {
		t.Fatal("outer op should still be open")
	}
	f.ChargeActive(7)
	f.End(100)
	rep := r.Attribution()
	if len(rep.Classes) != 1 || rep.Classes[0].Class != "update" {
		t.Fatalf("want one update class, got %+v", rep.Classes)
	}
	ca := rep.Classes[0]
	if ca.Ops != 1 || ca.MeanNs != 100 {
		t.Errorf("ops=%d mean=%v, want 1 op of 100ns", ca.Ops, ca.MeanNs)
	}
	if got := ca.MeanShare["descend"]; got != 0.12 {
		t.Errorf("descend share = %v, want 0.12 (12ns of 100)", got)
	}
}

// TestExemplarDeterminism: exemplars are ranked (total desc, client
// asc, seq asc) and truncated to K, independent of recording order.
func TestExemplarDeterminism(t *testing.T) {
	run := func(order []int) []Exemplar {
		r := NewFlightRecorder(FlightConfig{TopK: 3})
		flights := []*Flight{r.NewFlight(0), r.NewFlight(1), r.NewFlight(2)}
		// Ops: (client, total): (0,500) (1,500) (2,900) (0,100) (1,700)
		ops := []struct {
			cl    int
			total int64
		}{{0, 500}, {1, 500}, {2, 900}, {0, 100}, {1, 700}}
		for _, i := range order {
			op := ops[i]
			f := flights[op.cl]
			f.Begin(OpSearch, 1000)
			f.ChargeActive(op.total)
			f.End(1000 + op.total)
		}
		return r.exemplars(OpSearch)
	}
	a := run([]int{0, 1, 2, 3, 4})
	b := run([]int{4, 3, 2, 1, 0})
	// Reverse order changes per-client seqs, so compare ranked totals
	// and clients only.
	key := func(es []Exemplar) [][2]int64 {
		var out [][2]int64
		for _, e := range es {
			out = append(out, [2]int64{e.TotalNs, e.Client})
		}
		return out
	}
	want := [][2]int64{{900, 2}, {700, 1}, {500, 0}}
	if !reflect.DeepEqual(key(a), want) {
		t.Errorf("order A: got %v want %v", key(a), want)
	}
	if !reflect.DeepEqual(key(b), want) {
		t.Errorf("order B: got %v want %v", key(b), want)
	}
	if len(a) != 3 {
		t.Errorf("topK not enforced: %d exemplars", len(a))
	}
}

// TestTimelineWindows: ops land in the window of their completion,
// busy spans split across boundaries, and utilization normalizes by
// resource count.
func TestTimelineWindows(t *testing.T) {
	r := NewFlightRecorder(FlightConfig{TimelineWindowNs: 100, TimelineWindows: 8})
	r.Reset(1000)
	f := r.NewFlight(1)
	for _, end := range []int64{1010, 1090, 1150, 1310} {
		f.Begin(OpSearch, end-5)
		f.End(end)
	}
	r.AddNICBusy(1080, 1120) // 20ns in window 0, 20ns in window 1
	r.AddMNBusy(1300, 1350)  // 50ns in window 3
	tl := r.Timeline(2, 4)
	if len(tl.Windows) != 3 {
		t.Fatalf("want 3 populated windows, got %d: %+v", len(tl.Windows), tl.Windows)
	}
	w0, w1, w3 := tl.Windows[0], tl.Windows[1], tl.Windows[2]
	if w0.StartNs != 1000 || w0.Ops != 2 || w0.NICBusyNs != 20 {
		t.Errorf("window0: %+v", w0)
	}
	if w1.StartNs != 1100 || w1.Ops != 1 || w1.NICBusyNs != 20 {
		t.Errorf("window1: %+v", w1)
	}
	if w3.StartNs != 1300 || w3.Ops != 1 || w3.MNBusyNs != 50 {
		t.Errorf("window3: %+v", w3)
	}
	if want := 20.0 / (100 * 2); w0.NICUtilization != want {
		t.Errorf("nic utilization = %v, want %v", w0.NICUtilization, want)
	}
	if want := 50.0 / (100 * 4); w3.MNUtilization != want {
		t.Errorf("mn utilization = %v, want %v", w3.MNUtilization, want)
	}
	if tl.Dropped != 0 {
		t.Errorf("dropped = %d", tl.Dropped)
	}
	// Wrap the 8-slot ring: a completion 8 windows later recycles the
	// slot of window 0 and evicts its ops into the dropped counter.
	f.Begin(OpSearch, 1845)
	f.End(1850) // window start 1800 → slot (1800-1000)/100 = 8 ≡ 0 mod 8
	tl = r.Timeline(0, 0)
	if tl.Dropped != 2 {
		t.Errorf("after ring wrap: dropped = %d, want 2 (window0's ops)", tl.Dropped)
	}
}

// TestFlightReset: Reset wipes aggregates, exemplars and windows, and
// re-origins the timeline.
func TestFlightReset(t *testing.T) {
	r := NewFlightRecorder(FlightConfig{TimelineWindowNs: 100, TimelineWindows: 4})
	f := r.NewFlight(1)
	f.Begin(OpInsert, 0)
	f.ChargeActive(40)
	f.End(50)
	if len(r.Attribution().Classes) != 1 {
		t.Fatal("op not recorded")
	}
	r.Reset(5000)
	rep := r.Attribution()
	if len(rep.Classes) != 0 {
		t.Errorf("aggregates survived Reset: %+v", rep.Classes)
	}
	if got := r.exemplars(OpInsert); len(got) != 0 {
		t.Errorf("exemplars survived Reset: %+v", got)
	}
	tl := r.Timeline(0, 0)
	if tl.OriginNs != 5000 || len(tl.Windows) != 0 {
		t.Errorf("timeline survived Reset: %+v", tl)
	}
	// Pre-origin completions are ignored; post-origin ones land.
	r.AddNICBusy(100, 200)
	f.Begin(OpInsert, 5010)
	f.End(5020)
	tl = r.Timeline(0, 0)
	if len(tl.Windows) != 1 || tl.Windows[0].NICBusyNs != 0 {
		t.Errorf("post-Reset timeline wrong: %+v", tl.Windows)
	}
}

// TestNilFlightSafe: the disabled path (nil recorder, nil flight) is
// inert for every method.
func TestNilFlightSafe(t *testing.T) {
	var r *FlightRecorder
	f := r.NewFlight(1)
	if f != nil {
		t.Fatal("nil recorder must hand out nil flights")
	}
	f.Begin(OpSearch, 0)
	f.ChargeActive(10)
	f.Charge(PhaseNICQueue, 10)
	f.ChargeVerb(10, 0, 0, 5, 0, 0, 5)
	if f.SetPhase(PhaseLockBackoff) != PhaseDescend {
		t.Error("nil SetPhase should report PhaseDescend")
	}
	if f.Recording() {
		t.Error("nil flight is recording?")
	}
	f.End(10)
	r.Reset(0)
	r.AddNICBusy(0, 10)
	if got := r.Attribution(); len(got.Classes) != 0 {
		t.Error("nil recorder attribution non-empty")
	}
}

// TestSnapshotDumpDeterministic pins the registry dump contract: sorted
// by instrument name, one line per instrument, byte-identical however
// the registry was populated.
func TestSnapshotDumpDeterministic(t *testing.T) {
	build := func(order []func(r *Registry)) string {
		r := NewRegistry()
		for _, f := range order {
			f(r)
		}
		return r.Snapshot().Dump()
	}
	fill := []func(r *Registry){
		func(r *Registry) { r.Counter("idx.retry").Add(3) },
		func(r *Registry) { r.Gauge("dm.nic.depth").Set(7) },
		func(r *Registry) { r.Histogram("dm.nic.service_ns").Observe(400) },
		func(r *Registry) { r.Counter("bench.ops").Add(11) },
	}
	a := build(fill)
	b := build([]func(r *Registry){fill[3], fill[2], fill[1], fill[0]})
	if a != b {
		t.Errorf("dump depends on population order:\n%s\nvs\n%s", a, b)
	}
	want := "bench.ops counter 11\n" +
		"dm.nic.depth gauge 7 max 7\n" +
		"dm.nic.service_ns hist count 1 mean 400.0 p50 408 p99 408 max 408\n" +
		"idx.retry counter 3\n"
	if a != want {
		t.Errorf("dump format drifted:\ngot:\n%swant:\n%s", a, want)
	}
}
