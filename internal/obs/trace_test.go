package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestTracerChromeFormat(t *testing.T) {
	tr := NewTracer()
	sp := tr.Begin("chime.search", "idx", 3, 1000)
	sp.Arg("attempts", 2)
	sp.End(4500)
	tr.Instant("retry", "idx", 3, 2000)
	tr.CounterSample("nic0", 3000, map[string]float64{"backlog_ns": 512})

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d events", len(doc.TraceEvents))
	}
	span := doc.TraceEvents[0]
	if span["name"] != "chime.search" || span["ph"] != "X" {
		t.Fatalf("span event = %v", span)
	}
	// ts/dur are microseconds: 1000 ns -> 1 us, 3500 ns -> 3.5 us.
	if span["ts"].(float64) != 1.0 || span["dur"].(float64) != 3.5 {
		t.Fatalf("span timing = ts %v dur %v", span["ts"], span["dur"])
	}
	if span["args"].(map[string]any)["attempts"].(float64) != 2 {
		t.Fatalf("span args = %v", span["args"])
	}
	if doc.TraceEvents[1]["ph"] != "i" || doc.TraceEvents[2]["ph"] != "C" {
		t.Fatalf("instant/counter phases = %v / %v",
			doc.TraceEvents[1]["ph"], doc.TraceEvents[2]["ph"])
	}
}

func TestTracerEmptyAndNil(t *testing.T) {
	var buf bytes.Buffer
	var tr *Tracer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.TraceEvents == nil || len(doc.TraceEvents) != 0 {
		t.Fatalf("nil tracer must serialize an empty (non-null) event array: %s", buf.String())
	}
}

func TestTracerSpanClampsNegativeDuration(t *testing.T) {
	tr := NewTracer()
	tr.Begin("op", "idx", 1, 100).End(50) // virtual clocks never run backward; stay safe anyway
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Dur float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.TraceEvents[0].Dur != 0 {
		t.Fatalf("negative duration not clamped: %v", doc.TraceEvents[0].Dur)
	}
}
