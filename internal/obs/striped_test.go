package obs

import (
	"sync"
	"testing"
)

func TestStripedNilSafe(t *testing.T) {
	var s *Striped
	s.Add(3, 5)
	s.Inc(0)
	if s.Load() != 0 {
		t.Fatal("nil Striped must read 0")
	}
}

func TestStripedConcurrentSum(t *testing.T) {
	var s Striped
	const writers, each = 32, 1000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int32) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				s.Inc(w)
			}
		}(int32(w))
	}
	wg.Wait()
	if got := s.Load(); got != writers*each {
		t.Fatalf("Load = %d, want %d", got, writers*each)
	}
	s.Add(-1, 7) // negative hints must not panic (index is unsigned-mapped)
	if got := s.Load(); got != writers*each+7 {
		t.Fatalf("Load after hinted Add = %d, want %d", got, writers*each+7)
	}
}
