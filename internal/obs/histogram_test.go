package obs

import (
	"math"
	"testing"
)

// The histogram edge cases the bench harness depends on: empty
// histograms, single samples, q=1.0 and bucket boundaries (the cases
// that were implicit while the histogram lived in internal/bench).

func TestHistogramEmpty(t *testing.T) {
	h := &Histogram{}
	if got := h.Count(); got != 0 {
		t.Fatalf("empty Count = %d", got)
	}
	for _, q := range []float64{0.01, 0.5, 0.99, 1.0} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
	if got := h.Mean(); got != 0 {
		t.Fatalf("empty Mean = %v", got)
	}
	if st := h.Stats(); st != (HistogramStats{}) {
		t.Fatalf("empty Stats = %+v", st)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(100) // must not panic
	h.Merge(&Histogram{})
	(&Histogram{}).Merge(h)
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram must read as empty")
	}
}

func TestHistogramSingleSample(t *testing.T) {
	// Samples below 16 collapse to power-of-two buckets (~2x error);
	// from 16 up the 16-way minor split holds ~3% relative error.
	for _, ns := range []int64{1, 31, 1000, 123456789} {
		h := &Histogram{}
		h.Observe(ns)
		if h.Count() != 1 {
			t.Fatalf("Count = %d", h.Count())
		}
		if h.Mean() != float64(ns) {
			t.Fatalf("Mean = %v, want %v", h.Mean(), float64(ns))
		}
		// Every quantile of a one-sample histogram reports the same
		// bucket, within the bucketing's relative error (1/16 of the
		// major bucket, plus the half-step midpoint offset).
		for _, q := range []float64{0.001, 0.5, 0.99, 1.0} {
			got := h.Quantile(q)
			if relErr(got, ns) > 0.10 {
				t.Fatalf("Quantile(%v) of single sample %d = %d (rel err %.3f)",
					q, ns, got, relErr(got, ns))
			}
		}
	}
}

func TestHistogramQuantileOne(t *testing.T) {
	h := &Histogram{}
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	p100 := h.Quantile(1.0)
	if relErr(p100, 1000) > 0.10 {
		t.Fatalf("Quantile(1.0) = %d, want ~1000", p100)
	}
	// q > 1 clamps; q <= 0 reads the first non-empty bucket rather than
	// underflowing.
	if h.Quantile(2.0) != p100 {
		t.Fatalf("Quantile(2.0) = %d, want %d", h.Quantile(2.0), p100)
	}
	if got := h.Quantile(0); relErr(got, 1) > 1.0 {
		t.Fatalf("Quantile(0) = %d, want first bucket", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	// Samples below 1 clamp to the first bucket.
	h := &Histogram{}
	h.Observe(0)
	h.Observe(-5)
	if h.Count() != 2 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Quantile(1.0); got != 1 {
		t.Fatalf("clamped samples land at %d, want bucket mid 1", got)
	}

	// Exact powers of two sit at major-bucket starts; the reported mid
	// must stay within the minor-bucket width.
	for shift := uint(0); shift < 62; shift++ {
		ns := int64(1) << shift
		h := &Histogram{}
		h.Observe(ns)
		got := h.Quantile(0.5)
		if relErr(got, ns) > 0.10 {
			t.Fatalf("power-of-two %d reported as %d (rel err %.3f)",
				ns, got, relErr(got, ns))
		}
		// One below the boundary must not land in a higher bucket than
		// the boundary itself.
		if ns > 2 {
			h2 := &Histogram{}
			h2.Observe(ns - 1)
			if h2.Quantile(0.5) > got {
				t.Fatalf("sample %d reported above sample %d", ns-1, ns)
			}
		}
	}

	// The top of the int64 range must not index out of bounds.
	h = &Histogram{}
	h.Observe(math.MaxInt64)
	if h.Count() != 1 || h.Quantile(1.0) <= 0 {
		t.Fatal("MaxInt64 sample mishandled")
	}
}

func TestHistogramMergeAndQuantiles(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	for i := 0; i < 900; i++ {
		a.Observe(100)
	}
	for i := 0; i < 100; i++ {
		b.Observe(100000)
	}
	a.Merge(b)
	if a.Count() != 1000 {
		t.Fatalf("merged Count = %d", a.Count())
	}
	if p50 := a.Quantile(0.50); relErr(p50, 100) > 0.10 {
		t.Fatalf("merged p50 = %d, want ~100", p50)
	}
	if p99 := a.Quantile(0.999); relErr(p99, 100000) > 0.10 {
		t.Fatalf("merged p99.9 = %d, want ~100000", p99)
	}
	wantMean := (900*100.0 + 100*100000.0) / 1000.0
	if math.Abs(a.Mean()-wantMean) > 1e-9 {
		t.Fatalf("merged Mean = %v, want %v", a.Mean(), wantMean)
	}
}

func relErr(got, want int64) float64 {
	return math.Abs(float64(got)-float64(want)) / float64(want)
}
