package obs

import "sync/atomic"

// stripes is the fixed stripe count of a Striped counter: enough to
// spread any realistic lane/core count without false sharing, small
// enough that Load's sum stays trivial.
const stripes = 16

// stripe is one cache-line-padded counter cell. 64 bytes of padding on
// an 8-byte value keeps adjacent stripes out of each other's cache
// lines, so writers on different cores never bounce a line.
type stripe struct {
	v atomic.Int64
	_ [56]byte
}

// Striped is a nil-safe write-optimized counter for hot paths shared by
// many concurrent writers (e.g. the fabric fault counters under a
// sharded NIC): each writer lands on its own cache line, trading a
// slightly more expensive Load (a 16-way sum, read-mostly) for
// contention-free Adds. The zero value is ready to use.
type Striped struct {
	cells [stripes]stripe
}

// Add adds n on the stripe selected by hint — pass a lane, shard, or
// client index; any stable per-writer value spreads the load. No-op on
// a nil counter.
//
//chime:noalloc
func (s *Striped) Add(hint int32, n int64) {
	if s != nil {
		s.cells[uint32(hint)%stripes].v.Add(n)
	}
}

// Inc adds one on the stripe selected by hint. No-op on nil.
//
//chime:noalloc
func (s *Striped) Inc(hint int32) {
	s.Add(hint, 1)
}

// Load sums the stripes (0 for nil). The sum is not a snapshot at one
// instant — exactly the guarantee a single atomic counter gives
// concurrent readers anyway.
func (s *Striped) Load() int64 {
	if s == nil {
		return 0
	}
	var t int64
	for i := range s.cells {
		t += s.cells[i].v.Load()
	}
	return t
}
