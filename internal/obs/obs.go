// Package obs is the unified observability layer for the index stack:
// cheap atomic counters and gauges, log-bucketed histograms over virtual
// nanoseconds, and per-operation trace spans stamped with the dmsim
// virtual clock.
//
// Everything is nil-safe: a nil *Sink, *Registry, *Counter, *Gauge,
// *Histogram, *Tracer or *Span turns every method into a no-op, so
// instrumented hot paths cost exactly one branch on a nil pointer when
// no observer is configured. Layers resolve their instruments once at
// construction (see ResolveIndex) and never touch a map on the hot
// path.
//
// None of the instruments advance any virtual clock: attaching a sink
// changes what is recorded, never what is simulated, so virtual-time
// results are bit-identical with and without observation.
package obs

import "sync/atomic"

// Counter is a nil-safe atomic event counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. No-op on a nil counter.
//
//chime:noalloc
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. No-op on a nil counter.
//
//chime:noalloc
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current count (0 for nil).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge tracks a current level and the maximum it has reached — e.g.
// posted-verb inflight depth.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Add moves the level by delta, updating the running maximum.
//
//chime:noalloc
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	v := g.v.Add(delta)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Set forces the level, updating the running maximum.
//
//chime:noalloc
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Load returns the current level (0 for nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the maximum level observed (0 for nil).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// Sink bundles the observation channels: a Registry of aggregate
// instruments, an optional Tracer of timestamped events, and an
// optional per-op FlightRecorder (flight.go). A nil *Sink disables all
// of them.
type Sink struct {
	reg *Registry
	tr  *Tracer
	fr  *FlightRecorder
}

// NewSink returns a sink with a fresh registry and, when trace is true,
// a tracer.
func NewSink(trace bool) *Sink {
	s := &Sink{reg: NewRegistry()}
	if trace {
		s.tr = NewTracer()
	}
	return s
}

// Registry returns the sink's registry (nil for a nil sink).
func (s *Sink) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Tracer returns the sink's tracer (nil for a nil sink or an untraced
// sink).
func (s *Sink) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tr
}

// SetFlightRecorder attaches a per-op flight recorder to the sink.
// Attach before wiring the sink into fabrics and compute nodes
// (SetObserver resolves and caches the recorder pointer); a sink
// without one records no flights.
func (s *Sink) SetFlightRecorder(fr *FlightRecorder) {
	if s != nil {
		s.fr = fr
	}
}

// FlightRecorder returns the sink's flight recorder (nil for a nil sink
// or a sink without one).
func (s *Sink) FlightRecorder() *FlightRecorder {
	if s == nil {
		return nil
	}
	return s.fr
}

// IndexInstruments is the uniform per-index event set every index
// client resolves from a sink at construction. The zero value (all nil)
// is the disabled state; every field is individually nil-safe.
//
// Counter semantics, shared across CHIME, Sherman, SMART and ROLEX so
// the bench harness can fold them into any experiment row:
//
//   - Retries: operation-level restarts (a traversal or leaf protocol
//     observed a structural change and started over).
//   - TornReads: version-check failures on a fetched image (concurrent
//     writer caught mid-flight; the read is retried).
//   - LockBackoffs: failed remote lock CASes (contention backoff).
//   - SiblingChases: B-link sibling hops after half-splits (for ROLEX:
//     overflow-chain hops).
//   - Splits / Merges: structural modifications performed.
//   - HotspotHits / HotspotMisses: speculative single-entry reads that
//     did / did not resolve the key (CHIME only).
//   - WCCycles / WCCombined: leaf write cycles executed by the batch
//     write pipeline and keys absorbed into an already-open cycle.
//   - LeaseExpired: lock words found held past their lease expiry
//     (a crashed holder detected).
//   - Recoveries: stale locks successfully stolen and recovered from —
//     the node is repaired (CHIME leaves recompute the piggybacked
//     metadata) or re-read and re-validated under the stolen lock.
type IndexInstruments struct {
	Tracer *Tracer

	// Flight, when non-nil, is the per-op flight recorder the index's
	// clients register their Flights with (see flight.go).
	Flight *FlightRecorder

	Retries       *Counter
	TornReads     *Counter
	LockBackoffs  *Counter
	SiblingChases *Counter
	Splits        *Counter
	Merges        *Counter
	HotspotHits   *Counter
	HotspotMisses *Counter
	WCCycles      *Counter
	WCCombined    *Counter
	LeaseExpired  *Counter
	Recoveries    *Counter
}

// Registry names of the index instrument set (see IndexInstruments).
const (
	NameRetry        = "idx.retry"
	NameTornRead     = "idx.torn_read"
	NameLockBackoff  = "idx.lock_backoff"
	NameSiblingChase = "idx.sibling_chase"
	NameSplit        = "idx.split"
	NameMerge        = "idx.merge"
	NameHotspotHit   = "idx.hotspot.hit"
	NameHotspotMiss  = "idx.hotspot.miss"
	NameWCCycle      = "idx.wc.cycle"
	NameWCCombined   = "idx.wc.combined"
	NameLeaseExpired = "idx.lease_expired"
	NameRecovery     = "idx.recovery"
)

// ResolveIndex resolves the uniform index instrument set from a sink.
// A nil sink yields the zero (disabled) set.
func ResolveIndex(s *Sink) IndexInstruments {
	if s == nil {
		return IndexInstruments{}
	}
	r := s.Registry()
	return IndexInstruments{
		Tracer:        s.Tracer(),
		Flight:        s.FlightRecorder(),
		Retries:       r.Counter(NameRetry),
		TornReads:     r.Counter(NameTornRead),
		LockBackoffs:  r.Counter(NameLockBackoff),
		SiblingChases: r.Counter(NameSiblingChase),
		Splits:        r.Counter(NameSplit),
		Merges:        r.Counter(NameMerge),
		HotspotHits:   r.Counter(NameHotspotHit),
		HotspotMisses: r.Counter(NameHotspotMiss),
		WCCycles:      r.Counter(NameWCCycle),
		WCCombined:    r.Counter(NameWCCombined),
		LeaseExpired:  r.Counter(NameLeaseExpired),
		Recoveries:    r.Counter(NameRecovery),
	}
}
