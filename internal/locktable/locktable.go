// Package locktable implements Sherman's local lock table (SIGMOD '22),
// which CHIME inherits (§2.2 of the CHIME paper: Sherman "reduces
// lock-fail retries with shared local lock tables"): clients on the same
// compute node serialize on a local queue per remote lock before
// touching the remote lock word. Only the first local contender issues
// the remote CAS; when it releases while local waiters queue, the lock
// is handed over locally — the remote word stays locked and the next
// holder receives the current lock-word payload (CHIME's piggybacked
// vacancy bitmap and argmax) without any network traffic. The remote
// word is only written back when no local contender wants the lock.
//
// Virtual-time semantics: waiters Suspend from the fabric's time gate
// and Resume at the releaser's clock plus a small local handover cost,
// which is exactly the latency a handover costs on real hardware.
package locktable

import (
	"sync"

	"chime/internal/dmsim"
)

// handoverNs is the local CPU cost of passing a lock between clients of
// one CN.
const handoverNs = 200

type handoff struct {
	word uint64 // lock-word payload carried across the handover
	ok   bool   // false: lock not held remotely; acquire it yourself
	at   int64  // releaser's virtual time
}

type waiter struct {
	ch chan handoff
}

type lockState struct {
	held    bool
	waiters []*waiter
}

// Table is one compute node's local lock table. Safe for concurrent use.
type Table struct {
	mu sync.Mutex
	m  map[uint64]*lockState

	handovers int64
	acquires  int64
}

// New returns an empty table.
func New() *Table {
	return &Table{m: make(map[uint64]*lockState)}
}

// Stats reports total acquisitions and how many were served by local
// handover (no remote CAS).
func (t *Table) Stats() (acquires, handovers int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.acquires, t.handovers
}

// Acquire claims the local slot for a remote lock. It returns
// viaHandover=true with the handed-over lock-word payload when a local
// releaser passed the (still remotely held) lock directly; otherwise the
// caller must acquire the remote lock itself (the slot is reserved for
// it, so same-CN contention is off the wire).
func (t *Table) Acquire(dc *dmsim.Client, addr uint64) (word uint64, viaHandover bool) {
	t.mu.Lock()
	t.acquires++
	st := t.m[addr]
	if st == nil {
		st = &lockState{}
		t.m[addr] = st
	}
	if !st.held {
		st.held = true
		t.mu.Unlock()
		return 0, false
	}
	w := &waiter{ch: make(chan handoff, 1)}
	st.waiters = append(st.waiters, w)
	t.mu.Unlock()

	suspended := dc.Suspend()
	h := <-w.ch
	at := h.at + handoverNs
	if suspended {
		dc.Resume(at)
	} else if at > dc.Now() {
		dc.Advance(at - dc.Now())
	}
	if h.ok {
		t.mu.Lock()
		t.handovers++
		t.mu.Unlock()
	}
	return h.word, h.ok
}

// HasWaiters reports whether a local contender is queued; releasers use
// it to decide between a combined remote unlock and a local handover.
func (t *Table) HasWaiters(addr uint64) bool {
	return t.Waiters(addr) > 0
}

// Waiters reports how many local contenders are queued on the slot.
func (t *Table) Waiters(addr uint64) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.m[addr]
	if st == nil {
		return 0
	}
	return len(st.waiters)
}

// ReleaseHandover passes the (still remotely held) lock to the next
// local waiter along with the current lock-word payload. It reports
// false when no waiter was queued after all — the caller must then
// release the remote lock and call ReleaseRemote.
func (t *Table) ReleaseHandover(dc *dmsim.Client, addr uint64, word uint64) bool {
	t.mu.Lock()
	st := t.m[addr]
	if st == nil || len(st.waiters) == 0 {
		t.mu.Unlock()
		return false
	}
	w := st.waiters[0]
	st.waiters = st.waiters[1:]
	t.mu.Unlock()
	w.ch <- handoff{word: word, ok: true, at: dc.Now()}
	return true
}

// ReleaseRemote marks the slot free after the caller released the
// remote lock. A waiter that raced in since the HasWaiters check is
// woken with instructions to acquire remotely itself (the slot passes
// to it).
func (t *Table) ReleaseRemote(dc *dmsim.Client, addr uint64) {
	t.mu.Lock()
	st := t.m[addr]
	if st == nil {
		t.mu.Unlock()
		return
	}
	if len(st.waiters) > 0 {
		w := st.waiters[0]
		st.waiters = st.waiters[1:]
		// Slot stays held, now owned by the woken waiter.
		t.mu.Unlock()
		w.ch <- handoff{ok: false, at: dc.Now()}
		return
	}
	st.held = false
	delete(t.m, addr)
	t.mu.Unlock()
}
