package locktable

import (
	"sync"
	"sync/atomic"
	"testing"

	"chime/internal/dmsim"
	"chime/internal/fault"
)

// TestWaiterFIFOOrder pins handover fairness: local waiters are woken
// in arrival order, so no queued contender can be overtaken by a later
// one. The queue is built deterministically via the Waiters count.
func TestWaiterFIFOOrder(t *testing.T) {
	f := fabric()
	tbl := New()
	leader := f.NewClient()
	const addr, followers = 11, 4

	if _, ho := tbl.Acquire(leader, addr); ho {
		t.Fatal("leader must acquire remotely")
	}
	order := make(chan int, followers)
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		dc := f.NewClient()
		// Wait until the previous follower is queued so arrival order is
		// deterministic.
		for tbl.Waiters(addr) != i {
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, ho := tbl.Acquire(dc, addr); !ho {
				t.Errorf("follower %d: expected handover", i)
				return
			}
			order <- i
			if !tbl.ReleaseHandover(dc, addr, 0) {
				tbl.ReleaseRemote(dc, addr)
			}
		}(i)
	}
	for tbl.Waiters(addr) != followers {
	}
	if !tbl.ReleaseHandover(leader, addr, 0) {
		t.Fatal("handover with waiters queued must succeed")
	}
	wg.Wait()
	close(order)
	want := 0
	for got := range order {
		if got != want {
			t.Fatalf("handover order violated FIFO: got follower %d, want %d", got, want)
		}
		want++
	}
}

// TestRetryStormLiveness drives the full two-level protocol — local
// slot, then remote CAS on a real fabric lock word — from two compute
// nodes under an injected fault schedule (dropped completions and
// latency spikes on every verb class). Cross-CN CAS failures plus
// fault-retried verbs form the retry storm; the invariants are
// liveness (every client finishes all rounds, nobody starves behind
// the storm) and mutual exclusion.
func TestRetryStormLiveness(t *testing.T) {
	f := fabric()
	f.SetFaultInjector(fault.NewSchedule(fault.Config{
		Seed:      77,
		DropRate:  0.05,
		SpikeRate: 0.10,
		SpikeNs:   20_000,
	}))
	alloc := f.NewClient()
	gaddr, err := alloc.AllocRPC(0, 64)
	if err != nil {
		t.Fatal(err)
	}

	const cns, perCN, rounds = 2, 3, 40
	tables := [cns]*Table{New(), New()}
	var holders, violations, casFails, handovers atomic.Int64
	var wg sync.WaitGroup
	clients := make([]*dmsim.Client, cns*perCN)
	for i := range clients {
		clients[i] = f.NewClient()
		clients[i].JoinCohort()
	}
	for i, dc := range clients {
		wg.Add(1)
		go func(dc *dmsim.Client, tbl *Table) {
			defer wg.Done()
			defer dc.LeaveCohort()
			for r := 0; r < rounds; r++ {
				_, ho := tbl.Acquire(dc, gaddr.Off)
				if ho {
					handovers.Add(1)
				} else {
					backoff := int64(64)
					for {
						_, ok, err := dc.CAS(gaddr, 0, 1)
						if err != nil {
							t.Errorf("CAS under fault schedule: %v", err)
							return
						}
						if ok {
							break
						}
						casFails.Add(1)
						dc.Advance(backoff)
						if backoff < 8192 {
							backoff *= 2
						}
					}
				}
				if holders.Add(1) != 1 {
					violations.Add(1)
				}
				dc.Advance(300) // critical section
				holders.Add(-1)
				if tbl.ReleaseHandover(dc, gaddr.Off, 0) {
					continue
				}
				if _, _, err := dc.CAS(gaddr, 1, 0); err != nil {
					t.Errorf("unlock CAS: %v", err)
					return
				}
				tbl.ReleaseRemote(dc, gaddr.Off)
			}
		}(dc, tables[i/perCN])
	}
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d mutual-exclusion violations under retry storm", violations.Load())
	}
	// The storm must be real: remote CASes genuinely failed across CNs
	// and verbs were retried by the fault plane.
	if casFails.Load() == 0 {
		t.Fatal("no remote CAS failures — cross-CN contention never happened")
	}
	if st := f.FaultStats(); st.Retries == 0 {
		t.Fatalf("fault plane injected nothing: %+v", st)
	}
	if st := f.FaultStats(); st.Failures != 0 || st.Crashes != 0 {
		t.Fatalf("transient schedule must not surface terminal faults: %+v", f.FaultStats())
	}
}
