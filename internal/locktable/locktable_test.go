package locktable

import (
	"sync"
	"sync/atomic"
	"testing"

	"chime/internal/dmsim"
)

func fabric() *dmsim.Fabric {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 1 << 20
	return dmsim.MustNewFabric(cfg)
}

func TestUncontendedAcquire(t *testing.T) {
	f := fabric()
	tbl := New()
	dc := f.NewClient()
	if _, handover := tbl.Acquire(dc, 42); handover {
		t.Fatal("first acquire must not be a handover")
	}
	tbl.ReleaseRemote(dc, 42)
	if _, handover := tbl.Acquire(dc, 42); handover {
		t.Fatal("acquire after remote release must not be a handover")
	}
	tbl.ReleaseRemote(dc, 42)
	acq, ho := tbl.Stats()
	if acq != 2 || ho != 0 {
		t.Fatalf("stats = %d/%d", acq, ho)
	}
}

func TestHandoverCarriesWord(t *testing.T) {
	f := fabric()
	tbl := New()
	leader, follower := f.NewClient(), f.NewClient()

	if _, ho := tbl.Acquire(leader, 7); ho {
		t.Fatal("leader must acquire remotely")
	}
	got := make(chan uint64, 1)
	go func() {
		w, ho := tbl.Acquire(follower, 7)
		if !ho {
			got <- 0
			return
		}
		got <- w
	}()
	// Wait until the follower is queued, then hand over.
	for !tbl.HasWaiters(7) {
	}
	leader.Advance(5000)
	if !tbl.ReleaseHandover(leader, 7, 0xDEAD) {
		t.Fatal("handover must succeed with a waiter queued")
	}
	if w := <-got; w != 0xDEAD {
		t.Fatalf("handover word = %#x", w)
	}
	if follower.Now() < leader.Now() {
		t.Fatal("follower clock must reach the releaser's time")
	}
	tbl.ReleaseRemote(follower, 7)
}

func TestReleaseHandoverWithoutWaiters(t *testing.T) {
	f := fabric()
	tbl := New()
	dc := f.NewClient()
	tbl.Acquire(dc, 9)
	if tbl.ReleaseHandover(dc, 9, 1) {
		t.Fatal("handover with no waiters must report false")
	}
	tbl.ReleaseRemote(dc, 9)
}

func TestReleaseRemoteWakesRacingWaiter(t *testing.T) {
	f := fabric()
	tbl := New()
	a, b := f.NewClient(), f.NewClient()
	tbl.Acquire(a, 3)
	res := make(chan bool, 1)
	go func() {
		_, ho := tbl.Acquire(b, 3)
		res <- ho
	}()
	for !tbl.HasWaiters(3) {
	}
	// Releaser chose the remote path (e.g. combined unlock) after the
	// waiter queued: the waiter must be woken to CAS remotely itself.
	tbl.ReleaseRemote(a, 3)
	if ho := <-res; ho {
		t.Fatal("racing waiter must be told to acquire remotely")
	}
	tbl.ReleaseRemote(b, 3)
}

func TestMutualExclusionChain(t *testing.T) {
	f := fabric()
	tbl := New()
	const goroutines, rounds = 8, 100
	var holders atomic.Int64
	var violations atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dc := f.NewClient()
			for i := 0; i < rounds; i++ {
				tbl.Acquire(dc, 1)
				if holders.Add(1) != 1 {
					violations.Add(1)
				}
				dc.Advance(100)
				holders.Add(-1)
				if !tbl.ReleaseHandover(dc, 1, uint64(g)) {
					tbl.ReleaseRemote(dc, 1)
				}
			}
		}(g)
	}
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d mutual-exclusion violations", violations.Load())
	}
	// Handovers depend on real-time interleaving and may be rare on a
	// serialized host; mutual exclusion is the invariant under test
	// (deterministic handover coverage lives in TestHandoverCarriesWord).
}

func TestDistinctAddressesIndependent(t *testing.T) {
	f := fabric()
	tbl := New()
	a, b := f.NewClient(), f.NewClient()
	tbl.Acquire(a, 1)
	if _, ho := tbl.Acquire(b, 2); ho {
		t.Fatal("different address must not contend")
	}
	tbl.ReleaseRemote(a, 1)
	tbl.ReleaseRemote(b, 2)
}
