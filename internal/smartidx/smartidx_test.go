package smartidx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"chime/internal/dmsim"
	"chime/internal/ycsb"
)

func newTest(t *testing.T) (*Index, *ComputeNode, *Client) {
	t.Helper()
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	ix, err := Bootstrap(dmsim.MustNewFabric(cfg), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cn := ix.NewComputeNode(256 << 20)
	return ix, cn, cn.NewClient()
}

func val8(x uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, x)
	return b
}

func TestChildPacking(t *testing.T) {
	prop := func(mn uint8, offRaw uint64, leaf bool, kindRaw uint8) bool {
		a := dmsim.GAddr{MN: mn, Off: offRaw % (1 << 50)}
		kind := int(kindRaw % 4)
		addr, gotLeaf, gotKind := unpackChild(packChild(a, leaf, kind))
		if leaf {
			return addr == a && gotLeaf
		}
		return addr == a && !gotLeaf && gotKind == kind
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNodeGeometry(t *testing.T) {
	for kind := kindN4; kind <= kindN256; kind++ {
		if slotOff(kind, 0)%slotSize != 0 {
			t.Errorf("kind %d: slots not %d-aligned (off %d)", kind, slotSize, slotOff(kind, 0))
		}
		// A 16B-aligned slot never crosses a 64B line.
		off := slotOff(kind, 3)
		if off/64 != (off+slotSize-1)/64 {
			t.Errorf("kind %d: slot crosses a cache line", kind)
		}
	}
	if nodeSize(kindN4) >= nodeSize(kindN16) || nodeSize(kindN48) >= nodeSize(kindN256) {
		t.Error("node sizes must grow with kind")
	}
}

func TestNodeCodecRoundTrip(t *testing.T) {
	for kind := kindN4; kind <= kindN256; kind++ {
		n := &node{
			hdr:      header{kind: kind, depth: 2, prefixLen: 3, valid: true},
			children: map[byte]uint64{},
		}
		copy(n.hdr.prefix[:], []byte{9, 8, 7})
		for i := 0; i < kindSlots[kind] && i < 40; i++ {
			n.children[byte(i*5)] = packChild(dmsim.GAddr{Off: uint64(64 + i*64)}, i%2 == 0, kindN16)
		}
		img := encodeNode(n)
		got := decodeNode(dmsim.GAddr{Off: 1}, img)
		if got.hdr.kind != kind || got.hdr.depth != 2 || got.hdr.prefixLen != 3 || !got.hdr.valid {
			t.Fatalf("kind %d: header %+v", kind, got.hdr)
		}
		if len(got.children) != len(n.children) {
			t.Fatalf("kind %d: %d children, want %d", kind, len(got.children), len(n.children))
		}
		for kb, ch := range n.children {
			if got.children[kb] != ch {
				t.Fatalf("kind %d: child %d mismatch", kind, kb)
			}
		}
	}
}

func TestInsertSearch(t *testing.T) {
	_, _, cl := newTest(t)
	const n = 3000
	for i := uint64(0); i < n; i++ {
		if err := cl.Insert(ycsb.KeyOf(i), val8(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := uint64(0); i < n; i++ {
		got, err := cl.Search(ycsb.KeyOf(i))
		if err != nil || binary.LittleEndian.Uint64(got) != i {
			t.Fatalf("search %d: %v %v", i, got, err)
		}
	}
	if _, err := cl.Search(0xDEADBEEF); !errors.Is(err, ErrNotFound) {
		t.Fatalf("absent: %v", err)
	}
}

func TestDenseSequentialKeys(t *testing.T) {
	// Sequential keys share long prefixes: exercises prefix splits and
	// node expansion chains.
	_, _, cl := newTest(t)
	for i := uint64(0); i < 2000; i++ {
		if err := cl.Insert(i, val8(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := uint64(0); i < 2000; i++ {
		got, err := cl.Search(i)
		if err != nil || binary.LittleEndian.Uint64(got) != i {
			t.Fatalf("search %d: %v %v", i, got, err)
		}
	}
}

func TestUpsertAndUpdate(t *testing.T) {
	_, _, cl := newTest(t)
	if err := cl.Insert(7, val8(1)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Insert(7, val8(2)); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Search(7)
	if err != nil || binary.LittleEndian.Uint64(got) != 2 {
		t.Fatalf("upsert: %v %v", got, err)
	}
	if err := cl.Update(7, val8(3)); err != nil {
		t.Fatal(err)
	}
	got, _ = cl.Search(7)
	if binary.LittleEndian.Uint64(got) != 3 {
		t.Fatal("update lost")
	}
	if err := cl.Update(8, val8(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update absent: %v", err)
	}
}

func TestDelete(t *testing.T) {
	_, _, cl := newTest(t)
	for i := uint64(0); i < 500; i++ {
		if err := cl.Insert(ycsb.KeyOf(i), val8(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 500; i += 2 {
		if err := cl.Delete(ycsb.KeyOf(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	for i := uint64(0); i < 500; i++ {
		_, err := cl.Search(ycsb.KeyOf(i))
		if i%2 == 0 && !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted %d still present: %v", i, err)
		}
		if i%2 == 1 && err != nil {
			t.Fatalf("kept %d lost: %v", i, err)
		}
	}
	if err := cl.Delete(0xF00D); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete absent: %v", err)
	}
	// Deleted slots must be reusable.
	if err := cl.Insert(ycsb.KeyOf(0), val8(99)); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Search(ycsb.KeyOf(0))
	if err != nil || binary.LittleEndian.Uint64(got) != 99 {
		t.Fatal("reinsert after delete failed")
	}
}

func TestScanOrdered(t *testing.T) {
	_, _, cl := newTest(t)
	const n = 1500
	for i := uint64(0); i < n; i++ {
		if err := cl.Insert(ycsb.KeyOf(i), val8(i)); err != nil {
			t.Fatal(err)
		}
	}
	out, err := cl.Scan(0, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 200 {
		t.Fatalf("scan returned %d", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].Key >= out[i].Key {
			t.Fatal("scan unsorted")
		}
	}
	// Start mid-range.
	mid := out[100].Key
	out2, err := cl.Scan(mid, 50)
	if err != nil || len(out2) != 50 || out2[0].Key != mid {
		t.Fatalf("mid scan: len=%d first=%#x err=%v", len(out2), out2[0].Key, err)
	}
	all, err := cl.Scan(0, n*2)
	if err != nil || len(all) != n {
		t.Fatalf("full scan: %d of %d: %v", len(all), n, err)
	}
}

func TestReadAmplificationIsOneLeaf(t *testing.T) {
	ix, _, cl := newTest(t)
	const n = 2000
	for i := uint64(0); i < n; i++ {
		if err := cl.Insert(ycsb.KeyOf(i), val8(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < n; i++ { // warm the cache
		if _, err := cl.Search(ycsb.KeyOf(i)); err != nil {
			t.Fatal(err)
		}
	}
	before := cl.DM().Stats()
	const reads = 300
	for i := uint64(0); i < reads; i++ {
		if _, err := cl.Search(ycsb.KeyOf(i)); err != nil {
			t.Fatal(err)
		}
	}
	after := cl.DM().Stats()
	perOp := float64(after.BytesRead-before.BytesRead) / reads
	if perOp > float64(ix.LeafSize())*1.5 {
		t.Fatalf("per-search bytes %.0f, want ≈ one %dB leaf", perOp, ix.LeafSize())
	}
	if trips := after.Trips - before.Trips; trips != reads {
		t.Fatalf("cached search trips = %d for %d reads", trips, reads)
	}
}

func TestCacheConsumptionScalesWithKeys(t *testing.T) {
	// The KV-discrete trade-off: node bytes grow with the key count and
	// dwarf a B+-tree's internal-node footprint.
	_, cn, cl := newTest(t)
	perKey := func(n uint64) float64 {
		for i := uint64(0); i < n; i++ {
			if err := cl.Insert(ycsb.KeyOf(i), val8(i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := uint64(0); i < n; i++ {
			if _, err := cl.Search(ycsb.KeyOf(i)); err != nil {
				t.Fatal(err)
			}
		}
		_, _, _, used := cn.CacheStats()
		return float64(used) / float64(n)
	}
	pk := perKey(20000)
	if pk < 8 {
		t.Fatalf("cache per key = %.1fB; SMART should pay at least a pointer per key", pk)
	}
	t.Logf("cache bytes per key: %.1f", pk)
}

func TestConcurrentInserts(t *testing.T) {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	ix, err := Bootstrap(dmsim.MustNewFabric(cfg), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cn := ix.NewComputeNode(256 << 20)
	const clients, per = 6, 300
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := cn.NewClient()
			for i := 0; i < per; i++ {
				id := uint64(c*per + i)
				if err := cl.Insert(ycsb.KeyOf(id), val8(id)); err != nil {
					errs <- fmt.Errorf("client %d insert %d: %w", c, i, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	cl := cn.NewClient()
	for id := uint64(0); id < clients*per; id++ {
		got, err := cl.Search(ycsb.KeyOf(id))
		if err != nil || binary.LittleEndian.Uint64(got) != id {
			t.Fatalf("lost insert %d: %v %v", id, got, err)
		}
	}
}

func TestConcurrentMixed(t *testing.T) {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	ix, err := Bootstrap(dmsim.MustNewFabric(cfg), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cn := ix.NewComputeNode(256 << 20)
	loader := cn.NewClient()
	for i := uint64(0); i < 1000; i++ {
		if err := loader.Insert(ycsb.KeyOf(i), val8(i)); err != nil {
			t.Fatal(err)
		}
	}
	const clients = 5
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := cn.NewClient()
			r := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < 300; i++ {
				k := ycsb.KeyOf(uint64(r.Intn(1000)))
				switch r.Intn(4) {
				case 0:
					if _, err := cl.Search(k); err != nil && !errors.Is(err, ErrNotFound) {
						errs <- err
						return
					}
				case 1:
					if err := cl.Update(k, val8(uint64(i))); err != nil && !errors.Is(err, ErrNotFound) {
						errs <- err
						return
					}
				case 2:
					if err := cl.Insert(ycsb.KeyOf(uint64(c)<<32|uint64(i)), val8(1)); err != nil {
						errs <- err
						return
					}
				case 3:
					if _, err := cl.Scan(k, 10); err != nil {
						errs <- err
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
