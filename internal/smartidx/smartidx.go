// Package smartidx implements the SMART baseline (OSDI '23): an
// adaptive radix tree (ART) on disaggregated memory. SMART is the
// KV-discrete design point: every key's value lives in its own small
// leaf block, so point queries have a read amplification of ~1, but the
// compute-side cache must hold the radix tree's internal nodes — whose
// count grows with the number of keys — giving the high cache
// consumption the CHIME paper measures (Figure 14).
//
// Keys are fixed 8-byte integers traversed big-endian (so radix order
// equals numeric order and scans work). Nodes are adaptive (Node4 /
// Node16 / Node48 / Node256) with path compression. Child slots are
// 16-byte aligned records whose first word is the packed child pointer;
// a slot update is a single line-atomic write or CAS, mirroring SMART's
// one-sided CAS installs. Structural changes (slot installs, node
// expansion, prefix splits) serialize on a per-node lock; lookups are
// lock-free and validate via node invalidation flags.
package smartidx

import (
	"encoding/binary"
	"errors"
	"fmt"

	"chime/internal/dmsim"
	"chime/internal/offroute"
)

// Options configures a SMART index.
type Options struct {
	// ValueSize is the value payload stored in each leaf block.
	ValueSize int

	// LeaseLocks stamps an (owner, expiry) lease into every remote lock
	// so survivors can steal locks from crashed holders (internal/lease).
	LeaseLocks bool
	// LeaseNs is the lease duration in virtual nanoseconds (zero =
	// lease.DefaultNs).
	LeaseNs int64
	// Offload selects the hybrid one-sided/RPC protocol for reads
	// (searches and scans; ART structural writes need client-side
	// allocation and stay one-sided). Zero = pure one-sided.
	Offload offroute.Mode
}

// DefaultOptions returns the paper's default configuration.
func DefaultOptions() Options { return Options{ValueSize: 8} }

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.ValueSize < 1 || o.ValueSize > 4096 {
		return fmt.Errorf("smartidx: ValueSize %d out of [1,4096]", o.ValueSize)
	}
	if o.LeaseNs < 0 {
		return fmt.Errorf("smartidx: negative LeaseNs")
	}
	return nil
}

// ErrNotFound reports an absent key.
var ErrNotFound = errors.New("smartidx: key not found")

var errRestart = errors.New("smartidx: restart traversal")

const maxRetries = 100000

// Node kinds.
const (
	kindN4 = iota
	kindN16
	kindN48
	kindN256
)

var kindSlots = [4]int{4, 16, 48, 256}

// Remote node layout:
//
//	off 0:  8B lock word
//	off 8:  header: [1B kind][1B depth][1B prefixLen][1B valid][8B prefix][4B pad]
//	off 24: kindN48 only: 256B child index (keybyte -> slot+1)
//	then:   slot records, 16B each, 16-byte aligned:
//	        [8B child][1B keybyte][7B pad]
//
// A slot record never crosses a cache line, so the fabric's line-atomic
// copies make slot reads/writes atomic without version bytes; the child
// word doubles as the occupancy flag (0 = empty).
const (
	hdrOff    = 8
	hdrSize   = 16
	n48IdxOff = hdrOff + hdrSize
	slotSize  = 16
)

func slotsOff(kind int) int {
	if kind == kindN48 {
		return n48IdxOff + 256
	}
	return hdrOff + hdrSize
	// slots start 16-aligned in both cases (24 is not 16-aligned; see
	// nodeSize/slotOff which round up)
}

func slotOff(kind, i int) int {
	base := (slotsOff(kind) + slotSize - 1) &^ (slotSize - 1)
	return base + i*slotSize
}

func nodeSize(kind int) int {
	return slotOff(kind, kindSlots[kind])
}

// Child pointers are packed GAddrs with bit 55 tagging leaves and bits
// 53-54 carrying the child node's kind, so a parent pointer alone tells
// the reader how many bytes to fetch — one READ per node, never a
// header probe first.
const (
	leafTag   = uint64(1) << 55
	kindShift = 53
	kindMask  = uint64(3) << kindShift
	childMask = ^(leafTag | kindMask)
)

func packChild(a dmsim.GAddr, leaf bool, kind int) uint64 {
	v := a.Pack()
	if leaf {
		v |= leafTag
	}
	v |= uint64(kind) << kindShift
	return v
}

func unpackChild(v uint64) (addr dmsim.GAddr, leaf bool, kind int) {
	leaf = v&leafTag != 0
	kind = int((v & kindMask) >> kindShift)
	return dmsim.UnpackGAddr(v & childMask), leaf, kind
}

// header is a node's decoded header.
type header struct {
	kind      int
	depth     int // key bytes consumed before this node's prefix
	prefixLen int
	valid     bool
	prefix    [8]byte
}

func encodeHeader(img []byte, h header) {
	img[hdrOff+0] = byte(h.kind)
	img[hdrOff+1] = byte(h.depth)
	img[hdrOff+2] = byte(h.prefixLen)
	if h.valid {
		img[hdrOff+3] = 1
	} else {
		img[hdrOff+3] = 0
	}
	copy(img[hdrOff+4:hdrOff+12], h.prefix[:])
}

func decodeHeader(img []byte) header {
	h := header{
		kind:      int(img[hdrOff+0]),
		depth:     int(img[hdrOff+1]),
		prefixLen: int(img[hdrOff+2]),
		valid:     img[hdrOff+3] == 1,
	}
	copy(h.prefix[:], img[hdrOff+4:hdrOff+12])
	if h.kind > kindN256 {
		h.kind = kindN256
	}
	return h
}

// slot is one decoded child record.
type slot struct {
	child   uint64 // packed+tagged; 0 = empty
	keyByte byte
}

func encodeSlot(img []byte, kind, i int, s slot) {
	off := slotOff(kind, i)
	binary.LittleEndian.PutUint64(img[off:off+8], s.child)
	img[off+8] = s.keyByte
}

func decodeSlot(img []byte, kind, i int) slot {
	off := slotOff(kind, i)
	return slot{
		child:   binary.LittleEndian.Uint64(img[off : off+8]),
		keyByte: img[off+8],
	}
}

// keyBytes returns the big-endian byte path of a key.
func keyBytes(key uint64) [8]byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], key)
	return b
}

// node is a decoded internal node.
type node struct {
	addr dmsim.GAddr
	hdr  header
	// children maps keybyte -> packed child (tagged); absent = none.
	children map[byte]uint64
	// slotOf maps keybyte -> slot index (for in-place updates).
	slotOf map[byte]int
	nSlots int // occupied slots
}

func decodeNode(addr dmsim.GAddr, img []byte) *node {
	h := decodeHeader(img)
	n := &node{
		addr:     addr,
		hdr:      h,
		children: make(map[byte]uint64),
		slotOf:   make(map[byte]int),
	}
	switch h.kind {
	case kindN48:
		for kb := 0; kb < 256; kb++ {
			si := img[n48IdxOff+kb]
			if si == 0 {
				continue
			}
			s := decodeSlot(img, h.kind, int(si-1))
			if s.child != 0 {
				n.children[byte(kb)] = s.child
				n.slotOf[byte(kb)] = int(si - 1)
				n.nSlots++
			}
		}
	case kindN256:
		for i := 0; i < 256; i++ {
			s := decodeSlot(img, h.kind, i)
			if s.child != 0 {
				n.children[byte(i)] = s.child
				n.slotOf[byte(i)] = i
				n.nSlots++
			}
		}
	default:
		for i := 0; i < kindSlots[h.kind]; i++ {
			s := decodeSlot(img, h.kind, i)
			if s.child != 0 {
				n.children[s.keyByte] = s.child
				n.slotOf[s.keyByte] = i
				n.nSlots++
			}
		}
	}
	return n
}

// encodeNode builds a fresh image for a node from its decoded form.
func encodeNode(n *node) []byte {
	img := make([]byte, nodeSize(n.hdr.kind))
	encodeHeader(img, n.hdr)
	switch n.hdr.kind {
	case kindN48:
		i := 0
		for kb, ch := range n.children {
			encodeSlot(img, kindN48, i, slot{child: ch, keyByte: kb})
			img[n48IdxOff+int(kb)] = byte(i + 1)
			i++
		}
	case kindN256:
		for kb, ch := range n.children {
			encodeSlot(img, kindN256, int(kb), slot{child: ch, keyByte: kb})
		}
	default:
		i := 0
		for kb, ch := range n.children {
			encodeSlot(img, n.hdr.kind, i, slot{child: ch, keyByte: kb})
			i++
		}
	}
	return img
}

// grow returns the next node kind able to hold count children.
func kindFor(count int) int {
	switch {
	case count <= 4:
		return kindN4
	case count <= 16:
		return kindN16
	case count <= 48:
		return kindN48
	default:
		return kindN256
	}
}

// Index is one SMART tree on the fabric.
type Index struct {
	fabric *dmsim.Fabric
	opts   Options
	root   dmsim.GAddr
	leafSz int

	// mnprog is the MN-side offload program registered at bootstrap;
	// offMN is the MN it is addressed on (the root's MN).
	mnprog dmsim.MNProgramID
	offMN  int
}

// Bootstrap creates an empty SMART tree whose root is a Node256 at
// depth 0 (the root is never replaced, so no root pointer CAS races).
func Bootstrap(f *dmsim.Fabric, opts Options) (*Index, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	ix := &Index{fabric: f, opts: opts, leafSz: 8 + opts.ValueSize}
	boot := f.NewClient()
	root, err := boot.AllocRPC(0, nodeSize(kindN256))
	if err != nil {
		return nil, err
	}
	img := make([]byte, nodeSize(kindN256))
	encodeHeader(img, header{kind: kindN256, valid: true})
	if err := boot.Write(root, img); err != nil {
		return nil, err
	}
	ix.root = root
	ix.mnprog = f.RegisterMNProgram(&mnProgram{ix: ix})
	ix.offMN = int(root.MN)
	return ix, nil
}

// Options returns the index configuration.
func (ix *Index) Options() Options { return ix.opts }

// NodeSizeOf reports the encoded size of a node kind (exported for
// cache-consumption accounting in benchmarks).
func (ix *Index) NodeSizeOf(kind int) int { return nodeSize(kind) }

// LeafSize reports the leaf block footprint.
func (ix *Index) LeafSize() int { return ix.leafSz }
