package smartidx

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"chime/internal/dmsim"
	"chime/internal/lease"
	"chime/internal/obs"
	"chime/internal/offroute"
)

// ComputeNode holds the CN-shared radix-node cache. Unlike the B+-tree
// indexes, the node population scales with the key count (the KV-
// discrete trade-off), which is what makes SMART's cache so large.
type ComputeNode struct {
	ix *Index

	mu     sync.Mutex
	budget int64
	used   int64
	lru    *list.List
	items  map[dmsim.GAddr]*list.Element

	hits, misses int64

	obs obs.IndexInstruments
}

// SetObserver attaches an observability sink; clients created afterward
// count retries, lock backoffs and structural splits into it and emit
// per-operation trace spans when the sink traces. Call before
// NewClient. With no sink every instrumented call is a no-op.
func (cn *ComputeNode) SetObserver(s *obs.Sink) {
	cn.obs = obs.ResolveIndex(s)
}

type cacheSlot struct {
	addr dmsim.GAddr
	n    *node
	size int64
}

// NewComputeNode creates CN state with a cache byte budget.
func (ix *Index) NewComputeNode(cacheBytes int64) *ComputeNode {
	return &ComputeNode{
		ix:     ix,
		budget: cacheBytes,
		lru:    list.New(),
		items:  make(map[dmsim.GAddr]*list.Element),
	}
}

// CacheStats reports hit/miss/occupancy counters.
func (cn *ComputeNode) CacheStats() (hits, misses, nodes, usedBytes int64) {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.hits, cn.misses, int64(len(cn.items)), cn.used
}

func (cn *ComputeNode) cacheGet(addr dmsim.GAddr) *node {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if el, ok := cn.items[addr]; ok {
		cn.hits++
		cn.lru.MoveToFront(el)
		return el.Value.(*cacheSlot).n
	}
	cn.misses++
	return nil
}

func (cn *ComputeNode) cachePut(addr dmsim.GAddr, n *node) {
	size := int64(nodeSize(n.hdr.kind))
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if cn.budget <= 0 || size > cn.budget {
		return
	}
	if el, ok := cn.items[addr]; ok {
		s := el.Value.(*cacheSlot)
		cn.used += size - s.size
		s.n, s.size = n, size
		cn.lru.MoveToFront(el)
	} else {
		cn.items[addr] = cn.lru.PushFront(&cacheSlot{addr: addr, n: n, size: size})
		cn.used += size
	}
	for cn.used > cn.budget {
		back := cn.lru.Back()
		if back == nil {
			break
		}
		s := back.Value.(*cacheSlot)
		cn.lru.Remove(back)
		delete(cn.items, s.addr)
		cn.used -= s.size
	}
}

func (cn *ComputeNode) cacheDrop(addr dmsim.GAddr) {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if el, ok := cn.items[addr]; ok {
		s := el.Value.(*cacheSlot)
		cn.lru.Remove(el)
		delete(cn.items, addr)
		cn.used -= s.size
	}
}

// Client is one SMART client; not safe for concurrent use.
type Client struct {
	cn      *ComputeNode
	ix      *Index
	dc      *dmsim.Client
	alloc   *dmsim.ChunkAllocator
	backoff int64

	// router decides one-sided vs. MN-side offload per read op
	// (offload.go); nil when Options.Offload is off. offBuf is the
	// reusable point-query response buffer.
	router *offroute.Router
	offBuf []byte

	obs obs.IndexInstruments
}

// NewClient creates a client bound to this compute node.
func (cn *ComputeNode) NewClient() *Client {
	dc := cn.ix.fabric.NewClient()
	dc.SetFlight(cn.obs.Flight.NewFlight(dc.ID()))
	bufSize := cn.ix.opts.ValueSize
	if bufSize < 8 {
		bufSize = 8
	}
	return &Client{
		cn: cn, ix: cn.ix, dc: dc,
		alloc:  dmsim.NewChunkAllocator(dc, int(dc.ID())%cn.ix.fabric.MNs()),
		router: offroute.New(cn.ix.opts.Offload),
		offBuf: make([]byte, bufSize),
		obs:    cn.obs,
	}
}

// DM exposes the fabric client for the benchmark harness.
func (c *Client) DM() *dmsim.Client { return c.dc }

func (c *Client) yield() {
	if c.backoff < 64 {
		c.backoff = 64
	} else if c.backoff < 8192 {
		c.backoff *= 2
	}
	c.dc.Advance(c.backoff)
	runtime.Gosched()
}

// readNodeRemote fetches a node of the given kind.
func (c *Client) readNodeRemote(addr dmsim.GAddr, kind int) (*node, error) {
	img := make([]byte, nodeSize(kind))
	if err := c.dc.Read(addr, img); err != nil {
		return nil, err
	}
	return decodeNode(addr, img), nil
}

// getNode returns a decoded node, from cache or remote, and whether it
// came from the cache.
func (c *Client) getNode(addr dmsim.GAddr, kind int) (*node, bool, error) {
	if n := c.cn.cacheGet(addr); n != nil {
		return n, true, nil
	}
	n, err := c.readNodeRemote(addr, kind)
	if err != nil {
		return nil, false, err
	}
	if n.hdr.valid {
		c.cn.cachePut(addr, n)
	}
	return n, false, nil
}

// prefixMatch compares a node's compressed prefix against the key path;
// it returns the number of matching bytes.
func prefixMatch(h header, kb [8]byte) int {
	i := 0
	for ; i < h.prefixLen && h.depth+i < 8; i++ {
		if h.prefix[i] != kb[h.depth+i] {
			break
		}
	}
	return i
}

// step is one level of a traversal, kept for structural updates.
type step struct {
	addr dmsim.GAddr
	kind int
	kb   byte // key byte used to leave this node
}

// descend walks to the node responsible for key's next divergence. It
// returns the final node, the path of steps taken (excluding the final
// node), and the packed child value found under the key byte (0 if
// none). It retries on invalidated nodes.
func (c *Client) descend(key uint64) (*node, []step, uint64, error) {
	kb := keyBytes(key)
	for attempt := 0; attempt < maxRetries; attempt++ {
		cur, kind := c.ix.root, kindN256
		var path []step
		restart := false
		for hop := 0; hop < 10 && !restart; hop++ {
			n, fromCache, err := c.getNode(cur, kind)
			if err != nil {
				return nil, nil, 0, err
			}
			if !n.hdr.valid {
				// The node was replaced (expansion / prefix split). Drop
				// it AND the cached parent that still routes here, or the
				// stale pointer would recur forever.
				c.cn.cacheDrop(cur)
				if len(path) > 0 {
					c.cn.cacheDrop(path[len(path)-1].addr)
				}
				restart = true
				break
			}
			if prefixMatch(n.hdr, kb) < n.hdr.prefixLen {
				// Prefix diverges: this node is where the key belongs
				// (insert splits the prefix; search reports not-found).
				return n, path, 0, nil
			}
			d := n.hdr.depth + n.hdr.prefixLen
			if d >= 8 {
				return n, path, 0, nil
			}
			child, ok := n.children[kb[d]]
			if (!ok || child == 0) && fromCache {
				// A cached copy cannot observe remote invalidation: the
				// remote node may have been replaced (expansion/prefix
				// split) with this child present in the replacement.
				// Confirm absence against remote memory before trusting
				// the miss.
				fresh, err := c.readNodeRemote(cur, kind)
				if err != nil {
					return nil, nil, 0, err
				}
				if !fresh.hdr.valid {
					c.cn.cacheDrop(cur)
					if len(path) > 0 {
						c.cn.cacheDrop(path[len(path)-1].addr)
					}
					restart = true
					break
				}
				c.cn.cachePut(cur, fresh)
				n = fresh
				child, ok = n.children[kb[d]]
			}
			if !ok || child == 0 {
				return n, path, 0, nil
			}
			addr, leaf, ckind := unpackChild(child)
			if leaf {
				return n, path, child, nil
			}
			_ = fromCache // staleness is handled via the valid flag
			path = append(path, step{addr: cur, kind: kind, kb: kb[d]})
			cur, kind = addr, ckind
		}
		if !restart {
			return nil, nil, 0, fmt.Errorf("smartidx: descend(%#x): path too deep", key)
		}
		c.obs.Retries.Inc()
		c.yield()
	}
	return nil, nil, 0, fmt.Errorf("smartidx: descend(%#x) exhausted", key)
}

// readLeaf fetches a leaf block and decodes (key, value).
func (c *Client) readLeaf(addr dmsim.GAddr) (uint64, []byte, error) {
	buf := make([]byte, c.ix.leafSz)
	if err := c.dc.Read(addr, buf); err != nil {
		return 0, nil, err
	}
	return binary.LittleEndian.Uint64(buf[:8]), buf[8:], nil
}

// searchOneSided performs a point query: cached radix descent plus one
// small leaf READ — amplification ≈ 1, SMART's defining property.
func (c *Client) searchOneSided(key uint64) ([]byte, error) {
	for attempt := 0; attempt < maxRetries; attempt++ {
		n, _, child, err := c.descend(key)
		if err != nil {
			return nil, err
		}
		if child == 0 {
			// Could be a stale cached node missing a fresh install:
			// re-read remotely once before declaring absence.
			if fresh, err2 := c.readNodeRemote(n.addr, n.hdr.kind); err2 == nil && fresh.hdr.valid {
				c.cn.cachePut(n.addr, fresh)
				d := fresh.hdr.depth + fresh.hdr.prefixLen
				kb := keyBytes(key)
				if d < 8 {
					if ch, ok := fresh.children[kb[d]]; ok && ch != 0 {
						child = ch
					}
				}
				if prefixMatch(fresh.hdr, kb) < fresh.hdr.prefixLen {
					return nil, ErrNotFound
				}
			}
			if child == 0 {
				return nil, ErrNotFound
			}
		}
		addr, leaf, _ := unpackChild(child)
		if !leaf {
			// A concurrent split replaced the leaf with a subtree.
			c.obs.Retries.Inc()
			c.cn.cacheDrop(n.addr)
			c.yield()
			continue
		}
		k, v, err := c.readLeaf(addr)
		if err != nil {
			return nil, err
		}
		if k != key {
			// Stale cache or concurrent structural change.
			c.obs.Retries.Inc()
			c.cn.cacheDrop(n.addr)
			if _, err := c.readNodeRemote(n.addr, n.hdr.kind); err != nil {
				return nil, err
			}
			c.yield()
			continue
		}
		c.dc.Advance(150)
		return v, nil
	}
	return nil, fmt.Errorf("smartidx: Search(%#x) exhausted", key)
}

// lockNode acquires a node's lock word. In lease mode the CAS installs
// an (owner, expiry) lease and a lock stuck under an expired lease is
// stolen (internal/lease); callers re-read the node under the lock, so
// no repair read is needed.
func (c *Client) lockNode(addr dmsim.GAddr) error {
	// All time until the lock is held — CAS round trips, lease steals,
	// backoff — is lock time in the flight ledger.
	fl := c.dc.Flight()
	defer fl.SetPhase(fl.SetPhase(obs.PhaseLockBackoff))
	leaseMode := c.ix.opts.LeaseLocks
	leaseNs := c.ix.opts.LeaseNs
	if leaseNs <= 0 {
		leaseNs = lease.DefaultNs
	}
	for try := 0; try < maxRetries; try++ {
		var prev uint64
		var ok bool
		var err error
		var word uint64
		if leaseMode {
			word = lease.Word(c.dc.ID(), c.dc.Now()+leaseNs)
			prev, ok, err = c.dc.MaskedCAS(addr, 0, word, 1, ^uint64(0))
		} else {
			prev, ok, err = c.dc.MaskedCAS(addr, 0, 1, 1, 1)
		}
		if err != nil {
			return err
		}
		if ok {
			c.backoff = 0
			return nil
		}
		if leaseMode && lease.Expired(prev, c.dc.Now()) {
			c.obs.LeaseExpired.Inc()
			if _, won, err := c.dc.CAS(addr, prev, word); err != nil {
				return err
			} else if won {
				c.obs.Recoveries.Inc()
				c.backoff = 0
				return nil
			}
		}
		c.obs.LockBackoffs.Inc()
		c.yield()
	}
	return fmt.Errorf("smartidx: lock %v starved", addr)
}

func (c *Client) unlockNode(addr dmsim.GAddr) error {
	var zero [8]byte
	return c.dc.Write(addr, zero[:])
}

// writeSlotAndUnlock writes one slot record (and, for Node48, its index
// byte) plus the unlock in a single doorbell batch.
func (c *Client) writeSlotAndUnlock(n *node, slotIdx int, s slot, setIdx bool) error {
	img := make([]byte, slotSize)
	binary.LittleEndian.PutUint64(img[:8], s.child)
	img[8] = s.keyByte
	addrs := []dmsim.GAddr{n.addr.Add(uint64(slotOff(n.hdr.kind, slotIdx)))}
	bufs := [][]byte{img}
	if n.hdr.kind == kindN48 && setIdx {
		addrs = append(addrs, n.addr.Add(uint64(n48IdxOff+int(s.keyByte))))
		bufs = append(bufs, []byte{byte(slotIdx + 1)})
	}
	var zero [8]byte
	addrs = append(addrs, n.addr)
	bufs = append(bufs, zero[:])
	return c.dc.WriteBatch(addrs, bufs)
}

// writeLeaf allocates and writes a new leaf block, returning its tagged
// child word.
func (c *Client) writeLeaf(key uint64, value []byte) (uint64, error) {
	if len(value) != c.ix.opts.ValueSize {
		return 0, fmt.Errorf("smartidx: value is %dB, index stores %dB", len(value), c.ix.opts.ValueSize)
	}
	buf := make([]byte, c.ix.leafSz)
	binary.LittleEndian.PutUint64(buf[:8], key)
	copy(buf[8:], value)
	addr, err := c.alloc.Alloc(len(buf))
	if err != nil {
		return 0, err
	}
	if err := c.dc.Write(addr, buf); err != nil {
		return 0, err
	}
	return packChild(addr, true, 0), nil
}

// Insert adds or overwrites a key (upsert). The new leaf is written
// first (out of place), then published with a slot write under the
// owning node's lock.
func (c *Client) Insert(key uint64, value []byte) error {
	if sp := c.obs.Tracer.Begin("smart.insert", "idx", c.dc.ID(), c.dc.Now()); sp != nil {
		defer func() { sp.End(c.dc.Now()) }()
	}
	if fl := c.dc.Flight(); fl != nil {
		fl.Begin(obs.OpInsert, c.dc.Now())
		defer func() { fl.End(c.dc.Now()) }()
	}
	leafWord, err := c.writeLeaf(key, value)
	if err != nil {
		return err
	}
	for attempt := 0; attempt < maxRetries; attempt++ {
		n, path, child, err := c.descend(key)
		if err != nil {
			return err
		}
		done, err := c.install(n, path, child, key, leafWord)
		if err == errRestart {
			c.obs.Retries.Inc()
			c.yield()
			continue
		}
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
	return fmt.Errorf("smartidx: Insert(%#x) exhausted", key)
}

// install publishes leafWord for key at node n. It handles the four
// structural cases: free slot, existing-leaf replacement or split,
// prefix split, and node expansion.
func (c *Client) install(n *node, path []step, observedChild uint64, key uint64, leafWord uint64) (bool, error) {
	kb := keyBytes(key)
	if err := c.lockNode(n.addr); err != nil {
		return false, err
	}
	fresh, err := c.readNodeRemote(n.addr, n.hdr.kind)
	if err != nil {
		c.unlockNode(n.addr)
		return false, err
	}
	if !fresh.hdr.valid {
		c.unlockNode(n.addr)
		c.cn.cacheDrop(n.addr)
		return false, errRestart
	}

	// Case C: the key diverges inside this node's compressed prefix.
	if p := prefixMatch(fresh.hdr, kb); p < fresh.hdr.prefixLen {
		err := c.prefixSplit(fresh, path, p, kb, leafWord)
		return err == nil, err
	}

	d := fresh.hdr.depth + fresh.hdr.prefixLen
	if d >= 8 {
		c.unlockNode(n.addr)
		return false, fmt.Errorf("smartidx: key %#x: path exhausted at depth %d", key, d)
	}
	existing, ok := fresh.children[kb[d]]

	switch {
	case !ok || existing == 0:
		// Case A: free slot.
		if fresh.nSlots >= kindSlots[fresh.hdr.kind] {
			err := c.expand(fresh, path, kb[d], leafWord)
			return err == nil, err
		}
		var slotIdx int
		var setIdx bool
		if fresh.hdr.kind == kindN256 {
			slotIdx = int(kb[d]) // Node256 slots are keybyte-indexed
		} else {
			slotIdx, setIdx = c.pickFreeSlot(fresh)
			if slotIdx < 0 {
				err := c.expand(fresh, path, kb[d], leafWord)
				return err == nil, err
			}
		}
		if err := c.writeSlotAndUnlock(fresh, slotIdx, slot{child: leafWord, keyByte: kb[d]}, setIdx); err != nil {
			return false, err
		}
		c.cn.cacheDrop(n.addr)
		return true, nil

	default:
		addr, leaf, _ := unpackChild(existing)
		if !leaf {
			// The key belongs deeper; a subtree grew under this byte
			// since our descent. Retry from the top.
			c.unlockNode(n.addr)
			c.cn.cacheDrop(n.addr)
			return false, errRestart
		}
		exKey, _, err := c.readLeaf(addr)
		if err != nil {
			c.unlockNode(n.addr)
			return false, err
		}
		slotIdx := fresh.slotOf[kb[d]]
		if exKey == key {
			// Upsert: swap the leaf pointer in place.
			if err := c.writeSlotAndUnlock(fresh, slotIdx, slot{child: leafWord, keyByte: kb[d]}, false); err != nil {
				return false, err
			}
			c.cn.cacheDrop(n.addr)
			return true, nil
		}
		// Case B: two distinct keys share the path; grow a Node4 with
		// the common suffix as its compressed prefix.
		err = c.leafSplit(fresh, slotIdx, kb[d], d+1, exKey, existing, key, leafWord)
		return err == nil, err
	}
}

// pickFreeSlot returns a free slot index in a locked, fresh node image
// (and whether the Node48 index byte must be set).
func (c *Client) pickFreeSlot(n *node) (int, bool) {
	used := make([]bool, kindSlots[n.hdr.kind])
	for _, i := range n.slotOf {
		used[i] = true
	}
	for i, u := range used {
		if !u {
			return i, n.hdr.kind == kindN48
		}
	}
	return -1, false
}

// leafSplit replaces a leaf pointer with a new Node4 holding both the
// existing leaf and the new one, compressed on their common suffix.
func (c *Client) leafSplit(n *node, slotIdx int, kbyte byte, depth int, exKey uint64, exWord uint64, key uint64, leafWord uint64) error {
	c.obs.Splits.Inc()
	ka, kn := keyBytes(exKey), keyBytes(key)
	common := 0
	for depth+common < 8 && ka[depth+common] == kn[depth+common] {
		common++
	}
	if depth+common >= 8 {
		c.unlockNode(n.addr)
		return fmt.Errorf("smartidx: identical key paths for distinct keys %#x %#x", exKey, key)
	}
	n4 := &node{
		hdr:      header{kind: kindN4, depth: depth, prefixLen: common, valid: true},
		children: map[byte]uint64{},
	}
	copy(n4.hdr.prefix[:], ka[depth:depth+common])
	n4.children[ka[depth+common]] = exWord
	n4.children[kn[depth+common]] = leafWord
	addr, err := c.alloc.Alloc(nodeSize(kindN4))
	if err != nil {
		c.unlockNode(n.addr)
		return err
	}
	if err := c.dc.Write(addr, encodeNode(n4)); err != nil {
		c.unlockNode(n.addr)
		return err
	}
	word := packChild(addr, false, kindN4)
	if err := c.writeSlotAndUnlock(n, slotIdx, slot{child: word, keyByte: kbyte}, false); err != nil {
		return err
	}
	c.cn.cacheDrop(n.addr)
	return nil
}

// expand replaces a full node with the next kind up, adding the new
// leaf, and swings the parent pointer. The old node is invalidated.
func (c *Client) expand(n *node, path []step, kbyte byte, leafWord uint64) error {
	c.obs.Splits.Inc()
	if len(path) == 0 {
		c.unlockNode(n.addr)
		return fmt.Errorf("smartidx: root Node256 cannot expand")
	}
	parent := path[len(path)-1]

	bigger := &node{
		hdr:      n.hdr,
		children: make(map[byte]uint64, n.nSlots+1),
	}
	bigger.hdr.kind = kindFor(n.nSlots + 1)
	if bigger.hdr.kind <= n.hdr.kind {
		bigger.hdr.kind = n.hdr.kind + 1
	}
	for kb, ch := range n.children {
		bigger.children[kb] = ch
	}
	bigger.children[kbyte] = leafWord
	newAddr, err := c.alloc.Alloc(nodeSize(bigger.hdr.kind))
	if err != nil {
		c.unlockNode(n.addr)
		return err
	}
	if err := c.dc.Write(newAddr, encodeNode(bigger)); err != nil {
		c.unlockNode(n.addr)
		return err
	}

	if err := c.swingParent(parent, n.addr, packChild(newAddr, false, bigger.hdr.kind)); err != nil {
		c.unlockNode(n.addr)
		return err
	}
	// Invalidate the old node (header flag write) and release its lock.
	if err := c.dc.WriteBatch(
		[]dmsim.GAddr{n.addr.Add(hdrOff + 3), n.addr},
		[][]byte{{0}, make([]byte, 8)},
	); err != nil {
		return err
	}
	c.cn.cacheDrop(n.addr)
	return nil
}

// prefixSplit handles divergence inside a node's compressed prefix: a
// new Node4 takes over the common part, pointing at an adjusted copy of
// the old node and at the new leaf.
func (c *Client) prefixSplit(n *node, path []step, p int, kb [8]byte, leafWord uint64) error {
	c.obs.Splits.Inc()
	if len(path) == 0 {
		c.unlockNode(n.addr)
		return fmt.Errorf("smartidx: root has no prefix to split")
	}
	parent := path[len(path)-1]

	// Adjusted copy of n with the prefix shortened past the split byte.
	adj := &node{hdr: n.hdr, children: n.children}
	adj.hdr.depth = n.hdr.depth + p + 1
	adj.hdr.prefixLen = n.hdr.prefixLen - p - 1
	var newPrefix [8]byte
	copy(newPrefix[:], n.hdr.prefix[p+1:n.hdr.prefixLen])
	adj.hdr.prefix = newPrefix
	adjAddr, err := c.alloc.Alloc(nodeSize(adj.hdr.kind))
	if err != nil {
		c.unlockNode(n.addr)
		return err
	}
	if err := c.dc.Write(adjAddr, encodeNode(adj)); err != nil {
		c.unlockNode(n.addr)
		return err
	}

	n4 := &node{
		hdr:      header{kind: kindN4, depth: n.hdr.depth, prefixLen: p, valid: true},
		children: map[byte]uint64{},
	}
	copy(n4.hdr.prefix[:], n.hdr.prefix[:p])
	n4.children[n.hdr.prefix[p]] = packChild(adjAddr, false, adj.hdr.kind)
	n4.children[kb[n.hdr.depth+p]] = leafWord
	n4Addr, err := c.alloc.Alloc(nodeSize(kindN4))
	if err != nil {
		c.unlockNode(n.addr)
		return err
	}
	if err := c.dc.Write(n4Addr, encodeNode(n4)); err != nil {
		c.unlockNode(n.addr)
		return err
	}

	if err := c.swingParent(parent, n.addr, packChild(n4Addr, false, kindN4)); err != nil {
		c.unlockNode(n.addr)
		return err
	}
	if err := c.dc.WriteBatch(
		[]dmsim.GAddr{n.addr.Add(hdrOff + 3), n.addr},
		[][]byte{{0}, make([]byte, 8)},
	); err != nil {
		return err
	}
	c.cn.cacheDrop(n.addr)
	return nil
}

// swingParent replaces the parent's child word oldAddr -> newWord under
// the parent's lock, verifying the slot still points at the old node.
func (c *Client) swingParent(parent step, oldAddr dmsim.GAddr, newWord uint64) error {
	if err := c.lockNode(parent.addr); err != nil {
		return err
	}
	pn, err := c.readNodeRemote(parent.addr, parent.kind)
	if err != nil {
		c.unlockNode(parent.addr)
		return err
	}
	cur, ok := pn.children[parent.kb]
	if !ok || !pn.hdr.valid {
		c.unlockNode(parent.addr)
		return errRestart
	}
	curAddr, leaf, _ := unpackChild(cur)
	if leaf || curAddr != oldAddr {
		c.unlockNode(parent.addr)
		return errRestart
	}
	slotIdx := pn.slotOf[parent.kb]
	if err := c.writeSlotAndUnlock(pn, slotIdx, slot{child: newWord, keyByte: parent.kb}, false); err != nil {
		return err
	}
	c.cn.cacheDrop(parent.addr)
	return nil
}

// Update overwrites an existing key's value out of place: new leaf
// block, then a pointer swap under the owning node's lock.
func (c *Client) Update(key uint64, value []byte) error {
	if sp := c.obs.Tracer.Begin("smart.update", "idx", c.dc.ID(), c.dc.Now()); sp != nil {
		defer func() { sp.End(c.dc.Now()) }()
	}
	if fl := c.dc.Flight(); fl != nil {
		fl.Begin(obs.OpUpdate, c.dc.Now())
		defer func() { fl.End(c.dc.Now()) }()
	}
	leafWord, err := c.writeLeaf(key, value)
	if err != nil {
		return err
	}
	for attempt := 0; attempt < maxRetries; attempt++ {
		n, _, child, err := c.descend(key)
		if err != nil {
			return err
		}
		if child == 0 {
			return ErrNotFound
		}
		done, err := c.replaceLeaf(n, key, leafWord, false)
		if err == errRestart {
			c.obs.Retries.Inc()
			c.yield()
			continue
		}
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		return ErrNotFound
	}
	return fmt.Errorf("smartidx: Update(%#x) exhausted", key)
}

// Delete removes a key by clearing its slot.
func (c *Client) Delete(key uint64) error {
	if sp := c.obs.Tracer.Begin("smart.delete", "idx", c.dc.ID(), c.dc.Now()); sp != nil {
		defer func() { sp.End(c.dc.Now()) }()
	}
	if fl := c.dc.Flight(); fl != nil {
		fl.Begin(obs.OpDelete, c.dc.Now())
		defer func() { fl.End(c.dc.Now()) }()
	}
	for attempt := 0; attempt < maxRetries; attempt++ {
		n, _, child, err := c.descend(key)
		if err != nil {
			return err
		}
		if child == 0 {
			return ErrNotFound
		}
		done, err := c.replaceLeaf(n, key, 0, true)
		if err == errRestart {
			c.obs.Retries.Inc()
			c.yield()
			continue
		}
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		return ErrNotFound
	}
	return fmt.Errorf("smartidx: Delete(%#x) exhausted", key)
}

// replaceLeaf swaps (or clears) the leaf slot for key under the node
// lock. done=false (with nil error) means the key is absent.
func (c *Client) replaceLeaf(n *node, key uint64, newWord uint64, clearing bool) (bool, error) {
	kb := keyBytes(key)
	if err := c.lockNode(n.addr); err != nil {
		return false, err
	}
	fresh, err := c.readNodeRemote(n.addr, n.hdr.kind)
	if err != nil {
		c.unlockNode(n.addr)
		return false, err
	}
	if !fresh.hdr.valid {
		c.unlockNode(n.addr)
		c.cn.cacheDrop(n.addr)
		return false, errRestart
	}
	if prefixMatch(fresh.hdr, kb) < fresh.hdr.prefixLen {
		c.unlockNode(n.addr)
		return false, nil
	}
	d := fresh.hdr.depth + fresh.hdr.prefixLen
	if d >= 8 {
		c.unlockNode(n.addr)
		return false, nil
	}
	child, ok := fresh.children[kb[d]]
	if !ok || child == 0 {
		c.unlockNode(n.addr)
		return false, nil
	}
	addr, leaf, _ := unpackChild(child)
	if !leaf {
		c.unlockNode(n.addr)
		c.cn.cacheDrop(n.addr)
		return false, errRestart
	}
	exKey, _, err := c.readLeaf(addr)
	if err != nil {
		c.unlockNode(n.addr)
		return false, err
	}
	if exKey != key {
		c.unlockNode(n.addr)
		return false, nil
	}
	slotIdx := fresh.slotOf[kb[d]]
	s := slot{child: newWord, keyByte: kb[d]}
	if clearing {
		s = slot{child: 0, keyByte: kb[d]}
	}
	if err := c.writeSlotAndUnlock(fresh, slotIdx, s, false); err != nil {
		return false, err
	}
	if clearing && fresh.hdr.kind == kindN48 {
		// Clear the index byte too so the slot can be reused.
		if err := c.dc.Write(n.addr.Add(uint64(n48IdxOff+int(kb[d]))), []byte{0}); err != nil {
			return false, err
		}
	}
	c.cn.cacheDrop(n.addr)
	return true, nil
}

// KV is one scan result.
type KV struct {
	Key   uint64
	Value []byte
}

// scanOneSided walks the radix tree in byte order; every result costs
// its own small leaf READ — the IOPS-bound behaviour that makes SMART
// lose YCSB E in the paper (§5.2).
func (c *Client) scanOneSided(start uint64, count int) ([]KV, error) {
	for attempt := 0; attempt < maxRetries; attempt++ {
		var out []KV
		var acc [8]byte
		err := c.scanNode(c.ix.root, kindN256, acc, start, count, &out)
		if err == errRestart {
			c.obs.Retries.Inc()
			c.yield()
			continue
		}
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	return nil, fmt.Errorf("smartidx: Scan(%#x) exhausted", start)
}

// subtreeMax returns the largest key under a path whose first d bytes
// are fixed to acc[0:d] (the remaining bytes are 0xFF).
func subtreeMax(acc [8]byte, d int) uint64 {
	var hi [8]byte
	copy(hi[:], acc[:d])
	for i := d; i < 8; i++ {
		hi[i] = 0xFF
	}
	return binary.BigEndian.Uint64(hi[:])
}

func (c *Client) scanNode(addr dmsim.GAddr, kind int, acc [8]byte, start uint64, count int, out *[]KV) error {
	if len(*out) >= count {
		return nil
	}
	n, _, err := c.getNode(addr, kind)
	if err != nil {
		return err
	}
	if !n.hdr.valid {
		c.cn.cacheDrop(addr)
		n, err = c.readNodeRemote(addr, kind)
		if err != nil {
			return err
		}
		if !n.hdr.valid {
			// The replacement lives at a new address that only the
			// parent knows; the parent's stale cached pointer routes
			// here forever (see descend). errRestart drops each cached
			// node on the way back up the recursion.
			return errRestart
		}
	}
	copy(acc[n.hdr.depth:], n.hdr.prefix[:n.hdr.prefixLen])
	d := n.hdr.depth + n.hdr.prefixLen
	kbs := make([]int, 0, len(n.children))
	for kb := range n.children {
		kbs = append(kbs, int(kb))
	}
	sort.Ints(kbs)
	for _, kbi := range kbs {
		if len(*out) >= count {
			return nil
		}
		if d < 8 {
			acc[d] = byte(kbi)
			if subtreeMax(acc, d+1) < start {
				continue // whole subtree below the scan start
			}
		}
		child := n.children[byte(kbi)]
		caddr, leaf, ckind := unpackChild(child)
		if leaf {
			k, v, err := c.readLeaf(caddr)
			if err != nil {
				return err
			}
			if k >= start {
				*out = append(*out, KV{Key: k, Value: v})
			}
			continue
		}
		if err := c.scanNode(caddr, ckind, acc, start, count, out); err != nil {
			if err == errRestart {
				c.cn.cacheDrop(addr)
			}
			return err
		}
	}
	return nil
}
