package smartidx

import (
	"encoding/binary"
	"runtime"
	"sort"

	"chime/internal/dmsim"
)

// MN-side offload program (dmsim offload verbs), co-designed with
// SMART's remote layout. SMART is the KV-discrete design: a point query
// is a radix descent plus one tiny leaf READ, and a scan is one leaf
// READ per result — exactly the IOPS-bound shape that benefits from
// running at the MN. Searches and scans offload; structural writes
// (slot installs, expansions, prefix splits) need client-side
// allocation, so Update returns Unsupported and the client gates writes
// one-sided before the router ever sees them.
//
// Leaf blocks are chunk-allocated on the inserting client's home MN, so
// with several MNs a descent routinely crosses off the program's MN —
// the metered view reports that as a failed access and the program
// yields a CrossMN fallback verdict.
const (
	mnTornRetries = 64
	mnChainHops   = 10 // radix paths are at most 8 levels deep
)

type mnProgram struct {
	ix *Index
}

// readNode fetches and decodes a node through the metered view. A nil
// node carries the fallback status.
func (p *mnProgram) readNode(ctx *dmsim.MNCtx, addr dmsim.GAddr, kind int) (*node, dmsim.OffloadStatus) {
	img := make([]byte, nodeSize(kind))
	if !ctx.Read(addr, img) {
		return nil, dmsim.OffloadCrossMN
	}
	return decodeNode(addr, img), dmsim.OffloadOK
}

// Search: radix descent plus leaf read, MN-local. Invalidated nodes are
// observed fresh on every read (there is no MN-side cache), so a
// restart simply re-descends from the root.
func (p *mnProgram) Search(ctx *dmsim.MNCtx, key, arg uint64) dmsim.OffloadStatus {
	kb := keyBytes(key)
	for attempt := 0; attempt < mnTornRetries; attempt++ {
		restart := false
		cur, kind := p.ix.root, kindN256
		var leafAddr dmsim.GAddr
		found := false
		for hop := 0; hop < mnChainHops; hop++ {
			n, st := p.readNode(ctx, cur, kind)
			if n == nil {
				return st
			}
			if !n.hdr.valid {
				restart = true
				break
			}
			if prefixMatch(n.hdr, kb) < n.hdr.prefixLen {
				return dmsim.OffloadNotFound
			}
			d := n.hdr.depth + n.hdr.prefixLen
			if d >= 8 {
				return dmsim.OffloadNotFound
			}
			child, ok := n.children[kb[d]]
			if !ok || child == 0 {
				return dmsim.OffloadNotFound
			}
			addr, leaf, ckind := unpackChild(child)
			if leaf {
				leafAddr, found = addr, true
				break
			}
			cur, kind = addr, ckind
		}
		if restart {
			runtime.Gosched()
			continue
		}
		if !found {
			return dmsim.OffloadRetry
		}
		buf := make([]byte, p.ix.leafSz)
		if !ctx.Read(leafAddr, buf) {
			return dmsim.OffloadCrossMN
		}
		if binary.LittleEndian.Uint64(buf[:8]) != key {
			// Stale slot: a concurrent structural change moved the key.
			runtime.Gosched()
			continue
		}
		if !ctx.Emit(buf[8:]) {
			return dmsim.OffloadRetry
		}
		return dmsim.OffloadOK
	}
	return dmsim.OffloadRetry
}

// Update: ART writes allocate new leaf blocks (and possibly nodes)
// client-side; the wrapper gates them off before routing.
func (p *mnProgram) Update(ctx *dmsim.MNCtx, key, arg uint64, val []byte) dmsim.OffloadStatus {
	return dmsim.OffloadUnsupported
}

// Scan: in-order radix walk MN-side, one metered leaf read per emitted
// record instead of one network round trip each. Restarts are only
// honored before the first emitted record.
func (p *mnProgram) Scan(ctx *dmsim.MNCtx, start, arg uint64, limit int) dmsim.OffloadStatus {
	if limit <= 0 {
		return dmsim.OffloadOK
	}
	for attempt := 0; attempt < mnTornRetries; attempt++ {
		emitted := 0
		var acc [8]byte
		st, restart := p.scanNode(ctx, p.ix.root, kindN256, acc, start, limit, &emitted)
		if restart {
			if emitted > 0 {
				return dmsim.OffloadRetry
			}
			runtime.Gosched()
			continue
		}
		return st
	}
	return dmsim.OffloadRetry
}

func (p *mnProgram) scanNode(ctx *dmsim.MNCtx, addr dmsim.GAddr, kind int, acc [8]byte, start uint64, limit int, emitted *int) (dmsim.OffloadStatus, bool) {
	if *emitted >= limit {
		return dmsim.OffloadOK, false
	}
	n, st := p.readNode(ctx, addr, kind)
	if n == nil {
		return st, false
	}
	if !n.hdr.valid {
		return 0, true
	}
	copy(acc[n.hdr.depth:], n.hdr.prefix[:n.hdr.prefixLen])
	d := n.hdr.depth + n.hdr.prefixLen
	kbs := make([]int, 0, len(n.children))
	for kb := range n.children {
		kbs = append(kbs, int(kb))
	}
	sort.Ints(kbs)
	rec := make([]byte, p.ix.leafSz)
	for _, kbi := range kbs {
		if *emitted >= limit {
			return dmsim.OffloadOK, false
		}
		if d < 8 {
			acc[d] = byte(kbi)
			if subtreeMax(acc, d+1) < start {
				continue // whole subtree below the scan start
			}
		}
		child := n.children[byte(kbi)]
		caddr, leaf, ckind := unpackChild(child)
		if leaf {
			// A leaf block is [8B key][value] — already the record
			// format the scan verb emits.
			if !ctx.Read(caddr, rec) {
				return dmsim.OffloadCrossMN, false
			}
			if binary.LittleEndian.Uint64(rec[:8]) >= start {
				if !ctx.Emit(rec) {
					*emitted = limit
					return dmsim.OffloadOK, false
				}
				*emitted++
			}
			continue
		}
		st, restart := p.scanNode(ctx, caddr, ckind, acc, start, limit, emitted)
		if restart || st != dmsim.OffloadOK {
			return st, restart
		}
	}
	return dmsim.OffloadOK, false
}
