package smartidx

import (
	"encoding/binary"
	"testing"

	"chime/internal/dmsim"
)

func TestPrefixMatch(t *testing.T) {
	h := header{depth: 2, prefixLen: 3}
	copy(h.prefix[:], []byte{0xAA, 0xBB, 0xCC})
	kb := [8]byte{0, 0, 0xAA, 0xBB, 0xCC, 0xDD, 0, 0}
	if got := prefixMatch(h, kb); got != 3 {
		t.Fatalf("full match = %d", got)
	}
	kb[3] = 0x00
	if got := prefixMatch(h, kb); got != 1 {
		t.Fatalf("partial match = %d", got)
	}
	kb[2] = 0x00
	if got := prefixMatch(h, kb); got != 0 {
		t.Fatalf("no match = %d", got)
	}
}

func TestKeyBytesBigEndianOrder(t *testing.T) {
	a, b := keyBytes(0x0102030405060708), keyBytes(0x0102030405060709)
	for i := 0; i < 7; i++ {
		if a[i] != b[i] {
			t.Fatal("prefix bytes must match")
		}
	}
	if a[7] >= b[7] {
		t.Fatal("byte order must follow numeric order")
	}
	if binary.BigEndian.Uint64(a[:]) != 0x0102030405060708 {
		t.Fatal("keyBytes must be big-endian")
	}
}

func TestSubtreeMax(t *testing.T) {
	var acc [8]byte
	acc[0] = 0x12
	if got := subtreeMax(acc, 1); got != 0x12FFFFFFFFFFFFFF {
		t.Fatalf("subtreeMax = %#x", got)
	}
	if got := subtreeMax(acc, 0); got != ^uint64(0) {
		t.Fatalf("unbounded subtreeMax = %#x", got)
	}
}

func TestKindFor(t *testing.T) {
	cases := map[int]int{1: kindN4, 4: kindN4, 5: kindN16, 16: kindN16, 17: kindN48, 48: kindN48, 49: kindN256, 256: kindN256}
	for count, want := range cases {
		if got := kindFor(count); got != want {
			t.Errorf("kindFor(%d) = %d, want %d", count, got, want)
		}
	}
}

func TestExpansionChainN4ToN256(t *testing.T) {
	// Keys sharing a 7-byte prefix force one node through every
	// expansion: N4 -> N16 -> N48 -> N256.
	_, cn, cl := newTest(t)
	base := uint64(0xAABBCCDDEEFF0000)
	for i := uint64(0); i < 256; i++ {
		if err := cl.Insert(base|i, val8(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := uint64(0); i < 256; i++ {
		got, err := cl.Search(base | i)
		if err != nil || binary.LittleEndian.Uint64(got) != i {
			t.Fatalf("search %d: %v %v", i, got, err)
		}
	}
	// Order preserved through the expansions.
	out, err := cl.Scan(base, 256)
	if err != nil || len(out) != 256 {
		t.Fatalf("scan: %d %v", len(out), err)
	}
	for i, kv := range out {
		if kv.Key != base|uint64(i) {
			t.Fatalf("scan position %d = %#x", i, kv.Key)
		}
	}
	_ = cn
}

func TestValueSizeMismatch(t *testing.T) {
	_, _, cl := newTest(t)
	if err := cl.Insert(1, []byte("short")); err == nil {
		t.Fatal("wrong-size value must be rejected")
	}
}

func TestBootstrapValidation(t *testing.T) {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 1 << 20
	if _, err := Bootstrap(dmsim.MustNewFabric(cfg), Options{ValueSize: 0}); err == nil {
		t.Fatal("bad options must fail")
	}
}

// TestCrossCNStale: CN2 restructures the tree (expansions, prefix
// splits) behind CN1's cache; CN1 must recover via invalidation flags.
func TestCrossCNStale(t *testing.T) {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	ix, err := Bootstrap(dmsim.MustNewFabric(cfg), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cn1 := ix.NewComputeNode(128 << 20)
	cn2 := ix.NewComputeNode(128 << 20)
	cl1, cl2 := cn1.NewClient(), cn2.NewClient()

	base := uint64(0x1122334455660000)
	for i := uint64(0); i < 3; i++ {
		if err := cl1.Insert(base|i, val8(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 3; i++ { // warm CN1 down to the N4
		if _, err := cl1.Search(base | i); err != nil {
			t.Fatal(err)
		}
	}
	// CN2 forces expansions N4 -> ... -> N256 on that node.
	for i := uint64(3); i < 200; i++ {
		if err := cl2.Insert(base|i, val8(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 200; i++ {
		got, err := cl1.Search(base | i)
		if err != nil {
			t.Fatalf("stale search %d: %v", i, err)
		}
		if binary.LittleEndian.Uint64(got) != i {
			t.Fatalf("stale search %d wrong value", i)
		}
	}
	// Updates and deletes through the stale CN.
	if err := cl1.Update(base|7, val8(700)); err != nil {
		t.Fatal(err)
	}
	if err := cl1.Delete(base | 9); err != nil {
		t.Fatal(err)
	}
	got, _ := cl2.Search(base | 7)
	if binary.LittleEndian.Uint64(got) != 700 {
		t.Fatal("cross-CN update lost")
	}
}
