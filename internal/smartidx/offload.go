package smartidx

import (
	"encoding/binary"

	"chime/internal/dmsim"
	"chime/internal/obs"
)

// Public read entry points and the hybrid one-sided/offload router
// wiring; same shape as internal/core's offload.go. Only reads route:
// SMART's writes allocate leaf blocks (and nodes) client-side, so
// Insert/Update/Delete stay pure one-sided and never touch the router.
// A routed offload that falls back redoes the op one-sided and reports
// the combined cost, so adaptive mode learns the true price.

// Search performs a point query. With offload enabled the radix descent
// and leaf read may run MN-side as a single LeafSearchAtMN RPC.
func (c *Client) Search(key uint64) ([]byte, error) {
	if sp := c.obs.Tracer.Begin("smart.search", "idx", c.dc.ID(), c.dc.Now()); sp != nil {
		defer func() { sp.End(c.dc.Now()) }()
	}
	if fl := c.dc.Flight(); fl != nil {
		fl.Begin(obs.OpSearch, c.dc.Now())
		defer func() { fl.End(c.dc.Now()) }()
	}
	if c.router == nil {
		return c.searchOneSided(key)
	}
	if !c.router.UseOffload() {
		t0, trips0 := c.dc.Now(), c.dc.Stats().Trips
		val, err := c.searchOneSided(key)
		c.router.ObserveOneSided(c.dc.Now()-t0, c.dc.Stats().Trips-trips0)
		return val, err
	}
	t0 := c.dc.Now()
	n, st, err := c.dc.LeafSearchAtMN(c.ix.mnprog, c.ix.offMN, key, 0, c.offBuf)
	if err != nil {
		return nil, err
	}
	if !st.Fallback() {
		c.router.ObserveOffload(c.dc.Now() - t0)
		if st == dmsim.OffloadNotFound {
			return nil, ErrNotFound
		}
		return append([]byte(nil), c.offBuf[:n]...), nil
	}
	val, err := c.searchOneSided(key)
	c.router.ObserveOffload(c.dc.Now() - t0)
	return val, err
}

// Scan returns up to count items with keys >= start in ascending order,
// possibly as a single ScatterGatherScan RPC instead of one leaf READ
// round trip per result.
func (c *Client) Scan(start uint64, count int) ([]KV, error) {
	if count <= 0 {
		return nil, nil
	}
	if sp := c.obs.Tracer.Begin("smart.scan", "idx", c.dc.ID(), c.dc.Now()); sp != nil {
		defer func() { sp.End(c.dc.Now()) }()
	}
	if fl := c.dc.Flight(); fl != nil {
		fl.Begin(obs.OpScan, c.dc.Now())
		defer func() { fl.End(c.dc.Now()) }()
	}
	if c.router == nil {
		return c.scanOneSided(start, count)
	}
	if !c.router.UseOffload() {
		t0, trips0 := c.dc.Now(), c.dc.Stats().Trips
		out, err := c.scanOneSided(start, count)
		c.router.ObserveOneSided(c.dc.Now()-t0, c.dc.Stats().Trips-trips0)
		return out, err
	}
	t0 := c.dc.Now()
	recSize := c.ix.leafSz
	dst := make([]byte, count*recSize)
	n, st, err := c.dc.ScatterGatherScan(c.ix.mnprog, c.ix.offMN, start, 0, count, dst)
	if err != nil {
		return nil, err
	}
	if !st.Fallback() {
		c.router.ObserveOffload(c.dc.Now() - t0)
		out := make([]KV, 0, n/recSize)
		for off := 0; off+recSize <= n; off += recSize {
			out = append(out, KV{
				Key:   binary.LittleEndian.Uint64(dst[off : off+8]),
				Value: dst[off+8 : off+recSize],
			})
		}
		return out, nil
	}
	out, err := c.scanOneSided(start, count)
	c.router.ObserveOffload(c.dc.Now() - t0)
	return out, err
}

// OffloadStats reports how many of this client's routed ops went to
// each path (zeros with offload off).
func (c *Client) OffloadStats() (offloaded, onesided uint64) {
	return c.router.Stats()
}
