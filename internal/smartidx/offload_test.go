package smartidx

import (
	"encoding/binary"
	"errors"
	"testing"

	"chime/internal/dmsim"
	"chime/internal/offroute"
)

func newOffloadTree(t *testing.T, cfg dmsim.Config, opts Options) (*Index, *Client) {
	t.Helper()
	ix, err := Bootstrap(dmsim.MustNewFabric(cfg), opts)
	if err != nil {
		t.Fatal(err)
	}
	return ix, ix.NewComputeNode(256 << 20).NewClient()
}

// ModeAlways: searches and scans go through the MN program; results
// must match the one-sided paths, the MN CPU must have been charged,
// and writes must never route (they stay one-sided by design).
func TestOffloadSearchScan(t *testing.T) {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	opts := DefaultOptions()
	opts.Offload = offroute.ModeAlways
	ix, cl := newOffloadTree(t, cfg, opts)

	const n = 500
	for i := uint64(1); i <= n; i++ {
		if err := cl.Insert(i*7, val8(i*100)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= n; i++ {
		got, err := cl.Search(i * 7)
		if err != nil {
			t.Fatalf("Search(%d): %v", i*7, err)
		}
		if binary.LittleEndian.Uint64(got) != i*100 {
			t.Fatalf("Search(%d) = %d, want %d", i*7, binary.LittleEndian.Uint64(got), i*100)
		}
	}
	if _, err := cl.Search(3); !errors.Is(err, ErrNotFound) {
		t.Fatalf("absent key: %v, want ErrNotFound", err)
	}

	// Updates route one-sided (no offload verb) but stay correct.
	for i := uint64(1); i <= n; i += 3 {
		if err := cl.Update(i*7, val8(i*1000)); err != nil {
			t.Fatalf("Update(%d): %v", i*7, err)
		}
	}
	out, err := cl.Scan(7*10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 20 {
		t.Fatalf("scan returned %d items, want 20", len(out))
	}
	for j, kv := range out {
		i := 10 + uint64(j)
		if kv.Key != i*7 {
			t.Fatalf("scan[%d].Key = %d, want %d", j, kv.Key, i*7)
		}
		want := i * 100
		if i%3 == 1 {
			want = i * 1000
		}
		if binary.LittleEndian.Uint64(kv.Value) != want {
			t.Fatalf("scan[%d].Value = %d, want %d", j, binary.LittleEndian.Uint64(kv.Value), want)
		}
	}

	if off := cl.DM().Stats().Offloads; off == 0 {
		t.Error("ModeAlways client posted no offload verbs")
	}
	if st := ix.fabric.MNCPUStatsFor(0); st.Ops == 0 || st.BusyNs == 0 {
		t.Errorf("MN CPU unused under ModeAlways: %+v", st)
	}
	if offOps, oneOps := cl.OffloadStats(); offOps == 0 || oneOps != 0 {
		t.Errorf("router stats = %d offloaded, %d one-sided; want all offloaded", offOps, oneOps)
	}
}

// Multiple MNs: leaf blocks land on each writer's home MN, so the
// program's descents cross off its MN and the client transparently
// falls back — correctness is preserved and fallbacks are counted.
func TestOffloadCrossMNFallback(t *testing.T) {
	cfg := dmsim.DefaultConfig()
	cfg.MNs = 4
	cfg.MNSize = 128 << 20
	opts := DefaultOptions()
	opts.Offload = offroute.ModeAlways
	ix, cl := newOffloadTree(t, cfg, opts)

	cn2 := ix.NewComputeNode(256 << 20)
	writers := []*Client{cl, cn2.NewClient(), cn2.NewClient(), cn2.NewClient()}
	for w, cw := range writers {
		for i := uint64(0); i < 150; i++ {
			k := uint64(w)*1000 + i
			if err := cw.Insert(k, val8(k+7)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for w := range writers {
		for i := uint64(0); i < 150; i++ {
			k := uint64(w)*1000 + i
			got, err := cl.Search(k)
			if err != nil {
				t.Fatalf("Search(%d): %v", k, err)
			}
			if binary.LittleEndian.Uint64(got) != k+7 {
				t.Fatalf("Search(%d) = %d, want %d", k, binary.LittleEndian.Uint64(got), k+7)
			}
		}
	}
	total := ix.fabric.TotalMNCPUStats()
	if total.Ops == 0 {
		t.Fatal("no offloaded programs executed")
	}
	if total.Fallbacks == 0 {
		t.Error("4-MN tree produced no CrossMN fallbacks; expected off-MN leaf blocks")
	}
}

// Adaptive mode must stay correct and route reads to both paths.
func TestOffloadAdaptiveRoutesAndStaysCorrect(t *testing.T) {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	opts := DefaultOptions()
	opts.Offload = offroute.ModeAdaptive
	_, cl := newOffloadTree(t, cfg, opts)

	for i := uint64(1); i <= 300; i++ {
		if err := cl.Insert(i, val8(i)); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 4; round++ {
		for i := uint64(1); i <= 300; i++ {
			got, err := cl.Search(i)
			if err != nil {
				t.Fatalf("Search(%d): %v", i, err)
			}
			if binary.LittleEndian.Uint64(got) != i {
				t.Fatalf("Search(%d) = %d", i, binary.LittleEndian.Uint64(got))
			}
		}
	}
	offOps, oneOps := cl.OffloadStats()
	if offOps == 0 || oneOps == 0 {
		t.Errorf("adaptive router used only one path: %d offloaded, %d one-sided", offOps, oneOps)
	}
}

// Off means off: the zero Options value keeps the router nil and the
// client posts no offload verbs at all.
func TestOffloadOffPostsNothing(t *testing.T) {
	_, _, cl := newTest(t)
	for i := uint64(1); i <= 100; i++ {
		if err := cl.Insert(i, val8(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Search(i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Scan(1, 50); err != nil {
		t.Fatal(err)
	}
	if off := cl.DM().Stats().Offloads; off != 0 {
		t.Fatalf("ModeOff client posted %d offload verbs", off)
	}
	if offOps, oneOps := cl.OffloadStats(); offOps != 0 || oneOps != 0 {
		t.Fatalf("nil router counted ops: %d, %d", offOps, oneOps)
	}
}
