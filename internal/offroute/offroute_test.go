package offroute

import "testing"

func TestParseMode(t *testing.T) {
	cases := []struct {
		in   string
		want Mode
		ok   bool
	}{
		{"off", ModeOff, true},
		{"", ModeOff, true},
		{"on", ModeAlways, true},
		{"always", ModeAlways, true},
		{"adaptive", ModeAdaptive, true},
		{"bogus", ModeOff, false},
	}
	for _, c := range cases {
		got, err := ParseMode(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	for _, m := range []Mode{ModeOff, ModeAlways, ModeAdaptive} {
		back, err := ParseMode(m.String())
		if err != nil || back != m {
			t.Errorf("round trip %v -> %q -> %v, %v", m, m.String(), back, err)
		}
	}
}

func TestNilRouterIsOff(t *testing.T) {
	r := New(ModeOff)
	if r != nil {
		t.Fatalf("New(ModeOff) = %v, want nil", r)
	}
	if r.UseOffload() {
		t.Error("nil router offloaded")
	}
	if r.Mode() != ModeOff {
		t.Errorf("nil Mode() = %v", r.Mode())
	}
	r.ObserveOneSided(100, 3) // must not panic
	r.ObserveOffload(100)
	if off, one := r.Stats(); off != 0 || one != 0 {
		t.Errorf("nil Stats() = %d, %d", off, one)
	}
}

func TestAlwaysOffloads(t *testing.T) {
	r := New(ModeAlways)
	for i := 0; i < 100; i++ {
		if !r.UseOffload() {
			t.Fatalf("ModeAlways refused offload at op %d", i)
		}
		r.ObserveOffload(1_000_000) // terrible latency must not matter
		r.ObserveOneSided(1, 10)
	}
	if off, one := r.Stats(); off != 100 || one != 0 {
		t.Errorf("Stats() = %d, %d; want 100, 0", off, one)
	}
}

// Adaptive: offload clearly cheaper on a deep cold workload -> the
// router settles on offload, probing one-sided only 1/probeEvery ops.
func TestAdaptivePrefersCheaperPath(t *testing.T) {
	r := New(ModeAdaptive)
	const ops = 10 * probeEvery
	for i := 0; i < ops; i++ {
		if r.UseOffload() {
			r.ObserveOffload(3_000) // ~3 µs offloaded
		} else {
			r.ObserveOneSided(8_000, 4) // ~8 µs, 4 trips one-sided
		}
	}
	off, one := r.Stats()
	if off+one != ops {
		t.Fatalf("decisions %d+%d != %d ops", off, one, ops)
	}
	if off < ops*8/10 {
		t.Errorf("offload share %d/%d; cheaper path should dominate", off, ops)
	}
	if one == 0 {
		t.Error("never probed the one-sided path")
	}
}

// Adaptive: hot workload resolving in ~1 trip -> one-sided wins even if
// the latency EWMAs are close.
func TestAdaptiveHotnessCutoff(t *testing.T) {
	r := New(ModeAdaptive)
	const ops = 10 * probeEvery
	for i := 0; i < ops; i++ {
		if r.UseOffload() {
			r.ObserveOffload(2_000)
		} else {
			r.ObserveOneSided(2_100, 1) // single trip: hotspot-buffered
		}
	}
	off, one := r.Stats()
	if one < ops*8/10 {
		t.Errorf("one-sided share %d/%d; hot single-trip workload should stay one-sided", one, ops)
	}
	if off == 0 {
		t.Error("never probed the offload path")
	}
}

// Adaptive adapts: workload shifts from offload-friendly to hot, router
// follows within the backed-off probe cadence (worst case one
// probeBackoffMax gap plus a couple of base windows).
func TestAdaptiveTracksDrift(t *testing.T) {
	r := New(ModeAdaptive)
	for i := 0; i < 4*probeEvery; i++ { // cold phase
		if r.UseOffload() {
			r.ObserveOffload(3_000)
		} else {
			r.ObserveOneSided(9_000, 5)
		}
	}
	offCold, _ := r.Stats()
	const hot = 2 * probeBackoffMax // hot phase
	for i := 0; i < hot; i++ {
		if r.UseOffload() {
			r.ObserveOffload(3_000)
		} else {
			r.ObserveOneSided(2_000, 1)
		}
	}
	offTotal, oneTotal := r.Stats()
	offHot := offTotal - offCold
	if offHot > hot/4 {
		t.Errorf("offloaded %d/%d ops of the hot phase; router failed to shift one-sided", offHot, hot)
	}
	if oneTotal == 0 {
		t.Error("no one-sided ops at all")
	}
}

// Probe backoff: on a stable workload the forced-probe overhead decays
// to well under the base 12.5% burst duty cycle.
func TestProbeBackoffOverhead(t *testing.T) {
	r := New(ModeAdaptive)
	const ops = 4 * probeBackoffMax
	for i := 0; i < ops; i++ {
		if r.UseOffload() {
			r.ObserveOffload(3_000)
		} else {
			r.ObserveOneSided(8_000, 4)
		}
	}
	_, one := r.Stats()
	if one > ops*3/100 {
		t.Errorf("one-sided (probe) share %d/%d ops; backoff should keep stable-workload overhead under 3%%", one, ops)
	}
	if one == 0 {
		t.Error("never probed at all")
	}
}

// Determinism: two routers fed the identical decision/observation
// stream make identical choices.
func TestDeterministicDecisions(t *testing.T) {
	run := func() []bool {
		r := New(ModeAdaptive)
		out := make([]bool, 0, 300)
		for i := 0; i < 300; i++ {
			use := r.UseOffload()
			out = append(out, use)
			if use {
				r.ObserveOffload(int64(2000 + i%7*100))
			} else {
				r.ObserveOneSided(int64(5000+i%5*200), int64(2+i%3))
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
}
