// Package offroute decides, per operation, between one-sided traversal
// and MN-side offload (dmsim's offload verbs). One Router serves one
// index client: it tracks an EWMA of the observed virtual-time cost of
// each path plus the trips-per-op of the one-sided path (the hotness /
// cache-depth signal — a hot or well-cached op resolves in about one
// trip and cannot be beaten by an RPC that costs a trip by itself), and
// routes each op to the cheaper path with a deterministic periodic
// probe of the other so the estimate tracks workload drift.
//
// Decisions are a pure function of the observation history: no clocks,
// no randomness. Same op/latency stream => same routing stream, which
// is what keeps offload-enabled runs bit-identical across schedulers.
package offroute

import "fmt"

// Mode is the routing policy.
type Mode uint8

const (
	// ModeOff never offloads: pure one-sided traversal (today's path).
	ModeOff Mode = iota

	// ModeAlways offloads every op the index wired through the router
	// (static policy for head-to-heads).
	ModeAlways

	// ModeAdaptive routes per op on the observed cost EWMAs.
	ModeAdaptive
)

// ParseMode parses the chime-bench flag spelling: off | on | adaptive
// ("always" is accepted for "on").
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off", "":
		return ModeOff, nil
	case "on", "always":
		return ModeAlways, nil
	case "adaptive":
		return ModeAdaptive, nil
	}
	return ModeOff, fmt.Errorf("offroute: unknown mode %q (want off|on|adaptive)", s)
}

func (m Mode) String() string {
	switch m {
	case ModeAlways:
		return "on"
	case ModeAdaptive:
		return "adaptive"
	}
	return "off"
}

const (
	// ewmaWeight is the EWMA step divisor: estimate += (sample-est)/8.
	ewmaWeight = 8

	// probeEvery/probeBurst: once both paths are sampled, a burst of
	// probeBurst consecutive ops is periodically forced onto the path
	// the estimates currently disfavor, so a stale estimate cannot pin
	// the router forever. A burst (rather than a lone op) pushes enough
	// samples through the 1/8 EWMA to track a workload shift within a
	// couple of windows. The gap between bursts starts at probeEvery and
	// doubles every time a burst leaves the preference unchanged (up to
	// probeBackoffMax), collapsing back to probeEvery the moment a probe
	// flips it — so a stable workload pays probeBurst/probeBackoffMax
	// (<1%) steady-state overhead instead of a fixed 12.5%, while a
	// drifting one is re-probed at the base cadence. Deterministic:
	// driven entirely by the op counter and the preference history.
	probeEvery      = 64
	probeBurst      = 8
	probeBackoffMax = 1024

	// hotTripsCutoff: when the one-sided path averages at most this many
	// trips per op, the hotspot buffer / node cache is absorbing the
	// traversal and a one-trip RPC through the bounded MN CPU cannot
	// win; prefer one-sided regardless of the latency EWMAs.
	hotTripsCutoff = 1.5
)

// Router holds one client's routing state. Not safe for concurrent use
// (like the index clients that own it). The nil *Router routes
// everything one-sided, so un-wired clients cost one nil check.
type Router struct {
	mode Mode

	ewmaOne   float64 // one-sided cost, virtual ns
	ewmaOff   float64 // offload cost, virtual ns
	ewmaTrips float64 // one-sided trips per op
	haveOne   bool
	haveOff   bool

	n       uint64 // adaptive decisions taken (drives the probe cadence)
	oneOps  uint64
	offOps  uint64
	probing bool // last decision was a forced probe

	// Probe-backoff state (see probeEvery above).
	probeGap  uint64 // current gap between bursts (0 = uninitialized)
	nextProbe uint64 // decision count that opens the next burst
	burstLeft int    // forced ops remaining in the current burst
	prevPref  bool   // preference when the previous burst opened
	havePrev  bool
}

// New returns a router with the given policy. ModeOff returns nil: the
// zero-cost representation of "never offload".
func New(mode Mode) *Router {
	if mode == ModeOff {
		return nil
	}
	return &Router{mode: mode}
}

// Mode returns the policy (ModeOff for the nil router).
func (r *Router) Mode() Mode {
	if r == nil {
		return ModeOff
	}
	return r.mode
}

// preferOffload is the current estimate-driven preference. Before both
// paths have been sampled it bootstraps: offload first (one op samples
// it), then one-sided.
func (r *Router) preferOffload() bool {
	if !r.haveOff {
		return true
	}
	if !r.haveOne {
		return false
	}
	if r.ewmaTrips <= hotTripsCutoff {
		return false
	}
	return r.ewmaOff < r.ewmaOne
}

// UseOffload decides the next op. Call exactly once per routed op, then
// report the op's observed cost with ObserveOffload or ObserveOneSided.
func (r *Router) UseOffload() bool {
	if r == nil || r.mode == ModeOff {
		return false
	}
	if r.mode == ModeAlways {
		r.offOps++
		return true
	}
	r.n++
	pref := r.preferOffload()
	if r.probeGap == 0 {
		r.probeGap = probeEvery
		r.nextProbe = probeEvery
	}
	if r.burstLeft == 0 && r.haveOne && r.haveOff && r.n >= r.nextProbe {
		// Opening a new burst: back the cadence off while probes keep
		// confirming the standing preference, snap back when one flipped
		// it.
		if r.havePrev && pref == r.prevPref {
			r.probeGap *= 2
			if r.probeGap > probeBackoffMax {
				r.probeGap = probeBackoffMax
			}
		} else {
			r.probeGap = probeEvery
		}
		r.prevPref = pref
		r.havePrev = true
		r.nextProbe = r.n + r.probeGap
		r.burstLeft = probeBurst
	}
	r.probing = r.burstLeft > 0
	if r.probing {
		r.burstLeft--
		pref = !pref
	}
	if pref {
		r.offOps++
	} else {
		r.oneOps++
	}
	return pref
}

func ewma(est *float64, have *bool, sample float64) {
	if !*have {
		*est = sample
		*have = true
		return
	}
	*est += (sample - *est) / ewmaWeight
}

// ObserveOneSided reports a completed one-sided op: its virtual-time
// cost and the fabric round trips it took.
func (r *Router) ObserveOneSided(latNs, trips int64) {
	if r == nil {
		return
	}
	ewma(&r.ewmaOne, &r.haveOne, float64(latNs))
	if trips >= 0 {
		r.ewmaTrips += (float64(trips) - r.ewmaTrips) / ewmaWeight
	}
}

// ObserveOffload reports a completed offloaded op's virtual-time cost.
// Ops that fell back mid-way should be reported through ObserveOffload
// with the full cost (offload attempt + one-sided redo): the router
// then learns that offloading this workload is expensive.
func (r *Router) ObserveOffload(latNs int64) {
	if r == nil {
		return
	}
	ewma(&r.ewmaOff, &r.haveOff, float64(latNs))
}

// Stats reports ops routed to each path.
func (r *Router) Stats() (offloaded, onesided uint64) {
	if r == nil {
		return 0, 0
	}
	return r.offOps, r.oneOps
}
